"""The Qserv worker: an Xrootd ofs plugin around a local SQL engine.

Chunk queries arrive as writes to ``/query2/<chunkId>`` (section 5.4).
The worker parses the ``-- SUBCHUNKS:`` header, materializes the
required sub-chunk tables on the fly from its chunk tables (``CREATE
TABLE Object_713_45 AS SELECT ... WHERE subChunkId = 45``), executes
the statements against its local engine, dumps the combined result with
the mysqldump equivalent, and publishes the bytes at
``/result/<md5-of-query>`` for the master to read.

Queueing follows section 6.4: each worker keeps a FIFO queue served by
a fixed number of execution slots (the paper's cluster ran 4 per node)
and has *no concept of query cost*, which is exactly why long queries
hog the system in Figure 14.  An inline mode (slots=0) executes
synchronously inside ``on_write`` for deterministic tests.
"""

from __future__ import annotations

import re
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass

from ..analysis.races import track_shared
from ..analysis.sanitizer import make_condition, make_lock, make_rlock
from ..obs import events as obs_events
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..sql import Database, SqlError, Table, dump_table
from ..sql.engine import ResultTable
from ..sql.wire import decode_table, encode_table
from ..xrd import OfsPlugin
from ..xrd.filesystem import FileSystemError
from ..xrd.protocol import (
    CANCEL_PREFIX,
    CHUNK_PREFIX,
    DEADLINE_HEADER_PREFIX,
    MANIFEST_PREFIX,
    QUERY_PREFIX,
    RESULT_FORMAT_HEADER_PREFIX,
    RESULT_PREFIX,
    chunk_id_of_manifest_path,
    chunk_id_of_query_path,
    hash_of_cancel_path,
    parse_attempt_header,
    parse_trace_header,
    query_hash,
    result_path,
    table_of_chunk_path,
)
from .rewrite import SUBCHUNK_HEADER_PREFIX

__all__ = [
    "QservWorker",
    "WorkerStats",
    "WorkerShutdownError",
    "WorkerCancelledError",
]

# Physical sub-chunk table names: Object_713_45 / ObjectFullOverlap_713_45.
_SUBCHUNK_RE = re.compile(r"^(?P<base>\w+?)_(?P<chunk>\d+)_(?P<sub>\d+)$")

_RESULT_TABLE = "chunk_result"

# Error recorded against every result a shutdown abandons.
_SHUTDOWN_MESSAGE = "worker is shut down"

# Error recorded against a result withdrawn through /cancel/<H>.
_CANCELLED_MESSAGE = "chunk query cancelled by master"

# Cancelled result hashes remembered (with the withdrawn submissions'
# attempt nonces), so a late-arriving dispatch of a withdrawn
# submission is discarded instead of executed.  LRU-capped: when a
# hash rotates out, all its result bookkeeping goes with it.
_CANCEL_MEMORY = 4096

# Per-slot-thread task context: carries the FIFO queue wait from
# _serve/_run_task into _execute_task without widening the signature
# (tests wrap _execute_task with same-signature shims).
_task_ctx = threading.local()


class WorkerShutdownError(SqlError):
    """The worker shut down before (or while) producing this result.

    Distinguished from ordinary :class:`SqlError` because the master
    may safely re-dispatch the chunk to a surviving replica -- the
    query itself is not at fault.
    """


class WorkerCancelledError(SqlError):
    """This result was withdrawn through the ``/cancel/<H>`` protocol.

    A master normally never reads a result it cancelled; this surfaces
    when a blocked result read races the cancellation, or when a
    dispatch is refused on remembered cancel state.  A master whose own
    cancel token has *not* fired may safely retry: the refusal then
    stems from a different (withdrawn) submission of the same SQL, and
    a re-dispatch carrying the live submission's nonce executes.
    """


@dataclass
class WorkerStats:
    """Execution counters, for tests and the benchmark harness."""

    queries_executed: int = 0
    statements_executed: int = 0
    sub_chunk_tables_built: int = 0
    sub_chunk_cache_hits: int = 0
    result_cache_hits: int = 0
    result_rows: int = 0
    result_bytes: int = 0
    queue_high_water: int = 0
    binary_results: int = 0
    sqldump_results: int = 0
    results_evicted: int = 0
    queries_cancelled: int = 0
    queries_expired: int = 0


@track_shared(
    "_results", "_errors", "_deadlines", "_pending_reads", "_cancelled"
)
class QservWorker(OfsPlugin):
    """One worker node: local database + ofs plugin + FIFO queue.

    Parameters
    ----------
    name:
        Node name (also the Xrootd data-server name).
    db:
        The local engine holding this node's chunk tables.
    slots:
        Parallel execution slots.  0 means inline execution during
        ``on_write`` (deterministic; the default for tests).  Values
        >= 1 start that many daemon threads serving the FIFO queue.
    cache_sub_chunks:
        Keep generated sub-chunk tables for reuse.  The paper's
        implementation "does not cache them"; caching is the documented
        extension, so the default is off.
    cache_results:
        Serve repeated identical chunk queries from the stored result
        (the MySQL-query-cache effect behind the paper's HV1/HV3 "its
        result was cached" observations).  Safe here because the
        catalog is read-only ("Support for updates has not been
        implemented"); off by default to mirror uncached measurements.
    result_wait_timeout:
        Upper bound, in seconds, a result read blocks waiting for
        in-flight execution.  A chunk query carrying a
        ``-- DEADLINE:`` header tightens the wait further, so a hung
        executor surfaces to the master as a missing result within the
        query's budget instead of deadlocking the read.
    store:
        Optional :class:`~repro.sql.colstore.ColumnStore`.  When set,
        chunk tables installed over the wire (repair copies, loader
        pushes) are persisted to disk and registered as mmap-backed
        tables, so this worker can host chunk data far larger than its
        residency budget.  ``None`` (default) keeps the paper-era
        all-in-RAM behaviour.
    """

    def __init__(
        self,
        name: str,
        db: Database | None = None,
        slots: int = 0,
        cache_sub_chunks: bool = False,
        cache_results: bool = False,
        result_wait_timeout: float = 300.0,
        store=None,
    ):
        if slots < 0:
            raise ValueError("slots must be >= 0")
        if result_wait_timeout <= 0:
            raise ValueError("result_wait_timeout must be > 0")
        self.name = name
        self.db = db or Database("LSST")
        self.store = store
        self.cache_sub_chunks = cache_sub_chunks
        self.cache_results = cache_results
        self.result_wait_timeout = result_wait_timeout
        self.stats = WorkerStats()
        #: This worker's lifetime metrics, feeding the global registry.
        self.metrics = obs_metrics.Registry(parent=obs_metrics.REGISTRY)
        self._results: dict[str, bytes] = {}
        self._result_ready: dict[str, threading.Event] = {}
        self._errors: dict[str, str] = {}
        # Absolute monotonic deadline per result path, from the chunk
        # query's -- DEADLINE: header; bounds the on_read wait.
        self._deadlines: dict[str, float] = {}
        # Reads still owed per result path; with cache_results=False a
        # result is evicted when the last expected reader has read it.
        self._pending_reads: dict[str, int] = {}
        # Result paths withdrawn via /cancel/<H> mapped to the set of
        # withdrawn submissions' attempt nonces, LRU-capped: a queued
        # task of a withdrawn submission is discarded at dequeue, its
        # in-flight result is dropped at completion, and its late
        # dispatch is refused outright.  A dispatch carrying a *fresh*
        # nonce (a new submission of the same SQL) is never refused.
        self._cancelled: OrderedDict[str, set] = OrderedDict()
        self._lock = make_rlock("QservWorker._lock")
        self._queue: deque[tuple[str, int, str]] = deque()
        self._queue_cv = make_condition(self._lock, "QservWorker._queue_cv")
        # Sub-chunk tables are shared across concurrent queries on the
        # same chunk; refcounts keep one query from dropping a table
        # another is still scanning.
        self._build_lock = make_lock("QservWorker._build_lock")
        self._sub_chunk_refs: dict[str, int] = {}
        self.slots = slots
        self._threads: list[threading.Thread] = []
        self._shutdown = False
        for i in range(slots):
            t = threading.Thread(
                target=self._serve, name=f"{name}-slot{i}", daemon=True
            )
            t.start()
            self._threads.append(t)

    # -- ofs plugin interface --------------------------------------------------------

    def claims(self, path: str) -> bool:
        return (
            path.startswith(QUERY_PREFIX)
            or path.startswith(RESULT_PREFIX)
            or path.startswith(CHUNK_PREFIX)
            or path.startswith(MANIFEST_PREFIX)
            or path.startswith(CANCEL_PREFIX)
        )

    def on_write(self, path: str, data: bytes) -> None:
        if path.startswith(CHUNK_PREFIX):
            self._install_chunk_table(path, data)
            return
        if path.startswith(CANCEL_PREFIX):
            self._cancel_result(
                result_path(hash_of_cancel_path(path)), data.decode().strip()
            )
            return
        chunk_id = chunk_id_of_query_path(path)
        text = data.decode()
        rpath = result_path(query_hash(text))
        nonce = parse_attempt_header(text)
        budget = self._deadline_seconds(text)
        with self._lock:
            withdrawn = self._cancelled.get(rpath)
            if withdrawn is not None and nonce in withdrawn:
                # The master withdrew this submission before (or while)
                # the dispatch landed; refuse it with the typed error so
                # a racing result read is released, and never execute.
                self._errors[rpath] = _CANCELLED_MESSAGE
                event = self._result_ready.setdefault(rpath, threading.Event())
                if not self.cache_results:
                    self._pending_reads[rpath] = (
                        self._pending_reads.get(rpath, 0) + 1
                    )
                event.set()
                return
            if withdrawn is not None:
                # Same hash, different submission: an earlier submission
                # of this SQL was cancelled, but *this* dispatch is a
                # fresh one and must execute.  Clear the old cancel's
                # terminal state so it cannot poison the fresh result
                # (the cancel memory itself is kept -- late duplicates
                # of the withdrawn submission are still refused).
                if self._errors.get(rpath) == _CANCELLED_MESSAGE:
                    self._errors.pop(rpath)
                    event = self._result_ready.get(rpath)
                    if event is not None and event.is_set():
                        self._result_ready[rpath] = threading.Event()
            if self._shutdown:
                # A dispatch raced our shutdown; fail it immediately so
                # the master's read is released with an error instead
                # of blocking on a result that will never be produced.
                self._errors[rpath] = _SHUTDOWN_MESSAGE
                event = self._result_ready.setdefault(rpath, threading.Event())
                if not self.cache_results:
                    self._pending_reads[rpath] = (
                        self._pending_reads.get(rpath, 0) + 1
                    )
                event.set()
                return
            if (
                self.cache_results
                and rpath in self._results
                and rpath not in self._errors
            ):
                # Query-cache hit: the stored dump answers the repeat.
                self.stats.result_cache_hits += 1
                self._result_ready[rpath].set()
                return
            self._result_ready.setdefault(rpath, threading.Event())
            if budget is not None:
                self._deadlines[rpath] = time.monotonic() + budget
            if not self.cache_results:
                self._pending_reads[rpath] = self._pending_reads.get(rpath, 0) + 1
        if self.slots == 0:
            self._run_task(rpath, chunk_id, text)
        else:
            with self._queue_cv:
                self._queue.append((rpath, chunk_id, text, time.perf_counter()))
                self.stats.queue_high_water = max(
                    self.stats.queue_high_water, len(self._queue)
                )
                depth = len(self._queue)
                self._queue_cv.notify()
            self.metrics.gauge(f"worker.queue.depth.{self.name}").set(depth)

    def on_read(self, path: str):
        """Result bytes, blocking on in-flight execution in threaded mode.

        Without ``cache_results`` the result, error, and readiness
        entries are evicted once the master has read them -- a
        long-lived worker must not grow its result store unboundedly
        across queries (the bytes were only ever needed for this one
        transfer).
        """
        if path.startswith(CHUNK_PREFIX):
            return self._dump_chunk_table(path)
        if path.startswith(MANIFEST_PREFIX):
            return self._chunk_manifest(path)
        with self._lock:
            event = self._result_ready.get(path)
            deadline = self._deadlines.get(path)
        if event is None:
            return None
        timeout = self.result_wait_timeout
        if deadline is not None:
            timeout = min(timeout, max(deadline - time.monotonic(), 0.0))
        if not event.wait(timeout=timeout):
            return None
        with self._lock:
            if path in self._errors:
                message = self._errors[path]
                self._done_reading_locked(path)
                if message == _SHUTDOWN_MESSAGE:
                    raise WorkerShutdownError(f"worker {self.name}: {message}")
                if message == _CANCELLED_MESSAGE:
                    raise WorkerCancelledError(f"worker {self.name}: {message}")
                raise SqlError(f"worker {self.name}: {message}")
            data = self._results.get(path)
            if data is not None:
                self._done_reading_locked(path)
            return data

    def _done_reading_locked(self, path: str) -> None:
        """One owed read served; evict at zero (caller holds the lock)."""
        if self.cache_results:
            return
        remaining = self._pending_reads.get(path, 1) - 1
        if remaining > 0:
            self._pending_reads[path] = remaining
            return
        self._pending_reads.pop(path, None)
        self._results.pop(path, None)
        self._errors.pop(path, None)
        self._result_ready.pop(path, None)
        self._deadlines.pop(path, None)
        self.stats.results_evicted += 1
        self.metrics.counter("worker.results.evicted").add(1)

    # -- queue service ------------------------------------------------------------------

    def _serve(self):
        while True:
            with self._queue_cv:
                while not self._queue and not self._shutdown:
                    self._queue_cv.wait()
                if self._shutdown:
                    return
                rpath, chunk_id, text, enqueued = self._queue.popleft()
                depth = len(self._queue)
            # Time spent sitting in the FIFO before a slot picked the
            # task up: the queue-wait column of EXPLAIN ANALYZE and the
            # saturation signal SHOW HISTORY charts.
            queue_wait = max(time.perf_counter() - enqueued, 0.0)
            self.metrics.gauge(f"worker.queue.depth.{self.name}").set(depth)
            self.metrics.histogram("worker.queue.wait.seconds").observe(queue_wait)
            self._run_task(rpath, chunk_id, text, queue_wait=queue_wait)

    def shutdown(self, timeout: float = 5.0):
        """Stop serving; release every blocked reader with an error.

        Results still pending (queued but never executed, or in flight
        on a slot that will not finish) must not leave the master
        blocked on the result-ready wait: each unset event is failed
        with a typed error and set, so ``on_read`` returns promptly.
        """
        pending = 0
        with self._queue_cv:
            self._shutdown = True
            self._queue.clear()
            # Fail every result nobody has produced yet.
            for rpath, event in self._result_ready.items():
                if not event.is_set():
                    self._errors.setdefault(rpath, _SHUTDOWN_MESSAGE)
                    event.set()
                    pending += 1
            self._queue_cv.notify_all()
        obs_events.emit("worker_shutdown", worker=self.name, pending=pending)
        for t in self._threads:
            t.join(timeout=timeout)

    def queue_length(self) -> int:
        with self._lock:
            return len(self._queue)

    # -- cancellation --------------------------------------------------------------

    def _cancel_result(self, rpath: str, nonce: str = "") -> None:
        """Withdraw one submission's result path (the ``/cancel/<H>`` write).

        ``nonce`` is the withdrawn submission's ``-- ATTEMPT:`` value
        (empty for header-less dispatches); cancellation is scoped to
        it.  Frees the execution slot a queued task of that submission
        would have consumed, releases any reader blocked on the
        result-ready event with a typed error, and remembers the
        (hash, nonce) pair so an in-flight execution's payload is
        dropped at completion and a late re-dispatch of the *same*
        submission is refused -- while a fresh submission of identical
        SQL executes normally.  Idempotent.
        """
        dropped_from_queue = False
        with self._queue_cv:
            self._remember_cancel_locked(rpath, nonce)
            for i, item in enumerate(self._queue):
                if item[0] == rpath and parse_attempt_header(item[2]) == nonce:
                    del self._queue[i]
                    dropped_from_queue = True
                    break
            self._errors[rpath] = _CANCELLED_MESSAGE
            self._results.pop(rpath, None)
            event = self._result_ready.setdefault(rpath, threading.Event())
            self.stats.queries_cancelled += 1
            event.set()
        self.metrics.counter("worker.queries.cancelled").add(1)
        obs_events.emit(
            "chunk_cancelled",
            worker=self.name,
            path=rpath,
            queued=dropped_from_queue,
        )

    def _remember_cancel_locked(self, rpath: str, nonce: str) -> None:
        """Record a cancelled (hash, nonce); purge the oldest past the cap.

        A cancelled result is normally never read, so its bookkeeping
        (error entry, readiness event, owed-read count) has no
        refcounted eviction path; it is reclaimed here when the hash
        rotates out of the bounded cancel memory instead.
        """
        nonces = self._cancelled.get(rpath)
        if nonces is None:
            nonces = self._cancelled[rpath] = set()
        nonces.add(nonce)
        self._cancelled.move_to_end(rpath)
        while len(self._cancelled) > _CANCEL_MEMORY:
            stale, _ = self._cancelled.popitem(last=False)
            self._results.pop(stale, None)
            self._errors.pop(stale, None)
            self._result_ready.pop(stale, None)
            self._deadlines.pop(stale, None)
            self._pending_reads.pop(stale, None)

    def _abandon_locked(self, rpath: str, message: str) -> None:
        """Record ``message`` for a task skipped without executing."""
        self._errors[rpath] = message
        event = self._result_ready.get(rpath)
        if event is not None:
            event.set()

    def _run_task(self, rpath: str, chunk_id: int, text: str, queue_wait: float = 0.0):
        with self._lock:
            if self._shutdown:
                self._abandon_locked(rpath, _SHUTDOWN_MESSAGE)
                return
            if parse_attempt_header(text) in self._cancelled.get(rpath, ()):
                # This submission was withdrawn while the task sat in
                # the FIFO (counted by _cancel_result); refuse to
                # execute.  A same-hash task from a *different*
                # submission runs normally.
                self._abandon_locked(rpath, _CANCELLED_MESSAGE)
                return
            deadline = self._deadlines.get(rpath)
        if deadline is not None and time.monotonic() >= deadline:
            # The query's whole budget elapsed while this task sat in
            # the FIFO; the master has already timed out, so executing
            # now would only burn the slot.  Same monotonic clock, and
            # the worker's deadline is never earlier than the master's,
            # so this can only fire after the master gave up.
            with self._lock:
                self.stats.queries_expired += 1
                self._abandon_locked(rpath, "deadline expired before execution")
            self.metrics.counter("worker.queries.expired").add(1)
            obs_events.emit("chunk_expired", worker=self.name, chunk=chunk_id)
            return
        # Queue wait rides in a thread-local rather than the signature:
        # one slot thread runs one task at a time, and tests wrap
        # _execute_task with same-signature shims.
        _task_ctx.queue_wait = queue_wait
        self._execute_task(rpath, chunk_id, text)

    def _execute_task(self, rpath: str, chunk_id: int, text: str):
        queue_wait = getattr(_task_ctx, "queue_wait", 0.0)
        # Trace context, if the master propagated any: the ``-- TRACE:``
        # header names the dispatching attempt's span, so the execute
        # and dump spans recorded here parent under it -- correctly per
        # attempt, even across retries and hedged duplicates.
        query_trace, parent_span_id = self._trace_context(text)
        try:
            t0 = time.perf_counter()
            with obs_trace.span(
                "worker.execute",
                trace=query_trace,
                parent_id=parent_span_id,
                track=self.name,
                worker=self.name,
                chunk=chunk_id,
                queue_wait=round(queue_wait, 6),
            ) as execute_span:
                result = self.execute_chunk_query(chunk_id, text)
                execute_span.set(rows=result.num_rows)
            self.metrics.histogram("worker.execute.seconds").observe(
                time.perf_counter() - t0
            )
            fmt = self._result_format(text)
            t1 = time.perf_counter()
            with obs_trace.span(
                "worker.dump",
                trace=query_trace,
                parent_id=parent_span_id,
                track=self.name,
                worker=self.name,
                chunk=chunk_id,
                format=fmt,
            ):
                if fmt == "binary":
                    payload = encode_table(result, _RESULT_TABLE)
                    with self._lock:
                        self.stats.binary_results += 1
                else:
                    payload = dump_table(result, _RESULT_TABLE).encode()
                    with self._lock:
                        self.stats.sqldump_results += 1
            self.metrics.histogram("worker.dump.seconds").observe(
                time.perf_counter() - t1
            )
            self.metrics.counter("worker.queries").add(1)
            self.metrics.counter("worker.result.bytes").add(len(payload))
            with self._lock:
                if parse_attempt_header(text) in self._cancelled.get(rpath, ()):
                    # Withdrawn while executing: the payload is dropped
                    # and the typed error (already recorded by
                    # _cancel_result) stands.
                    self._results.pop(rpath, None)
                else:
                    # A stale cancel of an *earlier* submission may have
                    # recorded its typed error against this shared path
                    # while we executed; the fresh result wins.
                    self._errors.pop(rpath, None)
                    self._results[rpath] = payload
                    self.stats.result_rows += result.num_rows
                    self.stats.result_bytes += len(payload)
        except Exception as e:  # surfaced to the master on read
            self.metrics.counter("worker.errors").add(1)
            with self._lock:
                self._errors[rpath] = str(e)
        finally:
            with self._lock:
                event = self._result_ready.get(rpath)
                if event is not None:
                    event.set()

    @staticmethod
    def _trace_context(text: str):
        """``(Trace, parent_span_id)`` from the ``-- TRACE:`` header.

        ``(None, None)`` when the header is absent or the trace id is
        unknown to the in-process collector (e.g. tracing sampled this
        query out) -- spans then degrade to no-ops.
        """
        ctx = parse_trace_header(text)
        if ctx is None:
            return None, None
        return obs_trace.lookup(ctx[0]), ctx[1]

    @staticmethod
    def _deadline_seconds(text: str):
        """The time budget from the ``-- DEADLINE:`` header, or None."""
        for line in text.lstrip().splitlines():
            if line.startswith(DEADLINE_HEADER_PREFIX):
                try:
                    return max(float(line[len(DEADLINE_HEADER_PREFIX) :]), 0.0)
                except ValueError:
                    return None
            if not line.startswith("--"):
                break  # headers only appear before the first statement
        return None

    @staticmethod
    def _result_format(text: str) -> str:
        """The result encoding the master asked for (header negotiation).

        Chunk queries without a ``-- RESULT_FORMAT:`` header get the
        paper-faithful mysqldump text -- that keeps old masters and
        paper-accurate benchmark runs working against new workers.
        """
        for line in text.lstrip().splitlines():
            if line.startswith(RESULT_FORMAT_HEADER_PREFIX):
                requested = line[len(RESULT_FORMAT_HEADER_PREFIX) :].strip()
                if requested == "binary":
                    return "binary"
                return "sqldump"
            if not line.startswith("--"):
                break  # headers only appear before the first statement
        return "sqldump"

    # -- chunk query execution ---------------------------------------------------------------

    def execute_chunk_query(self, chunk_id: int, text: str) -> Table:
        """Run one chunk query and return the combined result table."""
        sub_chunk_ids, statements = self._parse_chunk_query(text)
        acquired: list[str] = []
        try:
            needed = self._needed_sub_chunk_tables(statements)
            for table_name in needed:
                self._acquire_sub_chunk(table_name)
                acquired.append(table_name)
            combined: Table | None = None
            for stmt in statements:
                out = self.db.execute(stmt)
                with self._lock:
                    self.stats.statements_executed += 1
                if out is None:
                    continue
                if combined is None:
                    combined = ResultTable("result", dict(out.columns()))
                elif out.num_rows:
                    combined.append_rows(out.columns())
            if combined is None:
                raise SqlError("chunk query contained no SELECT statement")
            with self._lock:
                self.stats.queries_executed += 1
            return combined
        finally:
            for table_name in acquired:
                self._release_sub_chunk(table_name)

    def _parse_chunk_query(self, text: str) -> tuple[list[int], list[str]]:
        lines = text.strip().splitlines()
        sub_chunk_ids: list[int] = []
        # Protocol headers (RESULT_FORMAT, SUBCHUNKS) are leading
        # comment lines in any order; consume them before the SQL body.
        while lines and lines[0].startswith("--"):
            header = lines.pop(0)
            if header.startswith(SUBCHUNK_HEADER_PREFIX):
                spec = header[len(SUBCHUNK_HEADER_PREFIX) :].strip()
                if spec:
                    sub_chunk_ids = [int(s.strip()) for s in spec.split(",")]
        body = "\n".join(lines)
        statements = [s.strip() for s in body.split(";") if s.strip()]
        return sub_chunk_ids, statements

    def _needed_sub_chunk_tables(self, statements: list[str]) -> list[str]:
        """Sub-chunk table names referenced by the statements."""
        from ..sql.parser import parse

        needed: dict[str, None] = {}
        for stmt_text in statements:
            for stmt in parse(stmt_text):
                for ref in getattr(stmt, "tables", ()) or ():
                    if _SUBCHUNK_RE.match(ref.table):
                        needed.setdefault(ref.table)
                for j in getattr(stmt, "joins", ()) or ():
                    if _SUBCHUNK_RE.match(j.table.table):
                        needed.setdefault(j.table.table)
        return list(needed)

    def _acquire_sub_chunk(self, table_name: str) -> None:
        """Build ``Base_CC_SS`` from ``Base_CC`` if absent; bump its refcount."""
        m = _SUBCHUNK_RE.match(table_name)
        if not m:
            return
        base, chunk, sub = m.group("base"), int(m.group("chunk")), int(m.group("sub"))
        parent = f"{base}_{chunk}"
        with self._build_lock:
            self._sub_chunk_refs[table_name] = self._sub_chunk_refs.get(table_name, 0) + 1
            if table_name in self.db.tables:
                self.stats.sub_chunk_cache_hits += 1
                return
            if parent not in self.db.tables:
                self._sub_chunk_refs[table_name] -= 1
                raise SqlError(
                    f"worker {self.name} has no chunk table {parent!r} "
                    f"needed to build {table_name!r}"
                )
            self.db.execute(
                f"CREATE TABLE {table_name} AS SELECT * FROM {parent} "
                f"WHERE subChunkId = {sub}"
            )
            self.stats.sub_chunk_tables_built += 1

    def _release_sub_chunk(self, table_name: str) -> None:
        """Drop the refcount; drop the table at zero unless caching.

        Per the protocol, the worker "is free to drop the tables
        afterwards" -- and the paper's implementation does not cache.
        """
        with self._build_lock:
            refs = self._sub_chunk_refs.get(table_name, 0) - 1
            self._sub_chunk_refs[table_name] = max(refs, 0)
            if refs <= 0 and not self.cache_sub_chunks:
                self.db.drop_table(table_name, if_exists=True)

    # -- chunk transfer (the repair fabric) ----------------------------------------------------

    def _dump_chunk_table(self, path: str):
        """Serve one chunk table as wire bytes (a repair copy's read side).

        The repair manager reads ``/chunk/<table>`` off a surviving
        replica through the ordinary file protocol, so every fault a
        :class:`~repro.xrd.faults.FaultPlan` can inject on reads --
        corruption, crashes, slowness -- applies to repair traffic too.
        """
        table_name = table_of_chunk_path(path)
        with self._build_lock:
            table = self.db.tables.get(table_name)
        if table is None:
            return None
        return encode_table(table, table_name)

    def _install_chunk_table(self, path: str, data: bytes) -> None:
        """Install a repair copy: decode wire bytes into a local table.

        Overwrites any existing copy -- re-running a repair (or healing
        a quarantined replica in place) must converge, not error.
        """
        table_name = table_of_chunk_path(path)
        try:
            table = decode_table(data)
        except Exception as e:
            # Damaged in flight or at rest: refuse the install as a
            # failed file transaction so the repairer retries the write
            # instead of an undecodable table landing half-installed.
            raise FileSystemError(
                f"chunk payload for {table_name!r} failed to decode: {e}"
            ) from e
        if table.name != table_name:
            table = table.rename(table_name)
        with self._build_lock:
            if self.store is not None:
                # Persist to the on-disk column store and serve the
                # chunk through its mmap handle: installs never hold
                # the full table in RAM past this decode.
                table = self.store.save_table(table, table_name)
            self.db.create_table(table, overwrite=True)
        self.metrics.counter("worker.chunks.installed").add(1)

    def _chunk_manifest(self, path: str):
        """Newline-joined chunk-level table names for one chunk id.

        Lets a repairer discover what a chunk physically consists of
        (director table plus overlap table, typically) without knowing
        the schema; None when this worker does not host the chunk.
        """
        names = self.chunk_tables(chunk_id_of_manifest_path(path))
        if not names:
            return None
        return "\n".join(names).encode()

    # -- hosting -----------------------------------------------------------------------------

    def chunk_tables(self, chunk_id: int) -> list[str]:
        """Chunk-level tables for ``chunk_id`` (base + overlap, no sub-chunks)."""
        cid = int(chunk_id)
        out = []
        for name in self.db.tables:
            parts = name.split("_")
            if len(parts) == 2 and parts[1].isdigit() and int(parts[1]) == cid:
                out.append(name)
        return sorted(out)

    def hosted_chunks(self) -> list[int]:
        """Chunk ids present in this worker's database (director tables)."""
        out = set()
        for name in self.db.tables:
            parts = name.split("_")
            # Chunk tables are exactly Base_CC; sub-chunk tables
            # (Base_CC_SS) and overlap tables are excluded.
            if len(parts) == 2 and parts[1].isdigit() and "FullOverlap" not in parts[0]:
                out.add(int(parts[1]))
        return sorted(out)

    def __repr__(self):
        return (
            f"QservWorker({self.name!r}, tables={len(self.db.tables)}, "
            f"slots={self.slots})"
        )
