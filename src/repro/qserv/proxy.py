"""The MySQL-proxy-shaped frontend (paper section 5.4).

"A MySQL Proxy wraps the qserv frontend so that queries can be
submitted using any MySQL-compatible client or library."  This module
provides that session surface: submit SQL text, get column names and
rows back, with per-session accounting.  Queries that touch no
partitioned table fall through to a local database when one is
attached, mimicking the proxy passing non-distributed statements to a
plain backend.

Sessions carry an identity (``user`` plus a unique ``session_id``)
that tags every ``query_start`` / ``query_end`` / ``query_failed``
event, so the event log can be sliced per tenant -- which is what the
frontend's fair-share accounting and the operator's "who is hammering
the cluster" question both need.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from ..obs import events as obs_events
from ..sql import Database
from .analysis import QservAnalysisError
from .czar import Czar, QueryResult

__all__ = ["QservProxy", "SessionLog", "HISTORY_LIMIT"]

#: Retained ``(sql, seconds)`` history entries per session.  A session
#: is long-lived (think a notebook kernel attached for days), so an
#: unbounded list is a slow memory leak; older entries roll off and are
#: counted in :attr:`SessionLog.history_dropped`.
HISTORY_LIMIT = 256

_session_ids = itertools.count(1)


@dataclass
class SessionLog:
    """Per-session query accounting (what a proxy would log)."""

    queries: int = 0
    distributed_queries: int = 0
    local_queries: int = 0
    failed_queries: int = 0
    total_seconds: float = 0.0
    #: Most recent ``(sql, seconds)`` pairs, bounded at HISTORY_LIMIT.
    history: deque = field(default_factory=lambda: deque(maxlen=HISTORY_LIMIT))
    #: Entries that rolled off the bounded history.
    history_dropped: int = 0

    def record(self, sql: str, seconds: float) -> None:
        if len(self.history) == self.history.maxlen:
            self.history_dropped += 1
        self.history.append((sql, seconds))


class QservProxy:
    """A client session against one czar, tagged with a user identity."""

    def __init__(
        self,
        czar: Czar,
        local_db: Optional[Database] = None,
        user: str = "anon",
        session_id: Optional[str] = None,
    ):
        self.czar = czar
        self.local_db = local_db
        self.user = user
        self.session_id = session_id or f"session-{next(_session_ids)}"
        self.log = SessionLog()

    def query(self, sql: str, **submit_kwargs) -> QueryResult:
        """Submit one query; raises SqlError/QservAnalysisError on failure.

        Extra keyword arguments (``deadline``, ``allow_partial``,
        ``cancel``) are forwarded to :meth:`Czar.submit`.
        """
        t0 = time.perf_counter()
        self.log.queries += 1
        obs_events.emit(
            "query_start", sql=sql, session=self.session_id, user=self.user
        )
        try:
            try:
                result = self.czar.submit(sql, **submit_kwargs)
                self.log.distributed_queries += 1
            except QservAnalysisError:
                if self.local_db is None:
                    raise
                table = self.local_db.execute(sql)
                if table is None:
                    raise
                from .czar import QueryStats

                result = QueryResult(table=table, stats=QueryStats())
                self.log.local_queries += 1
        except Exception as e:
            self.log.failed_queries += 1
            obs_events.emit(
                "query_failed",
                sql=sql,
                error=f"{type(e).__name__}: {e}",
                session=self.session_id,
                user=self.user,
            )
            raise
        finally:
            elapsed = time.perf_counter() - t0
            self.log.total_seconds += elapsed
            self.log.record(sql, elapsed)
        obs_events.emit(
            "query_end",
            sql=sql,
            seconds=round(elapsed, 6),
            rows=result.table.num_rows,
            session=self.session_id,
            user=self.user,
        )
        return result

    def fetch_all(self, sql: str) -> tuple[list[str], list[tuple]]:
        """Column names and row tuples -- the shape a MySQL client sees."""
        result = self.query(sql)
        return result.column_names, result.rows()
