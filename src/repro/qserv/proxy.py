"""The MySQL-proxy-shaped frontend (paper section 5.4).

"A MySQL Proxy wraps the qserv frontend so that queries can be
submitted using any MySQL-compatible client or library."  This module
provides that session surface: submit SQL text, get column names and
rows back, with per-session accounting.  Queries that touch no
partitioned table fall through to a local database when one is
attached, mimicking the proxy passing non-distributed statements to a
plain backend.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ..obs import events as obs_events
from ..sql import Database
from .analysis import QservAnalysisError
from .czar import Czar, QueryResult

__all__ = ["QservProxy", "SessionLog"]


@dataclass
class SessionLog:
    """Per-session query accounting (what a proxy would log)."""

    queries: int = 0
    distributed_queries: int = 0
    local_queries: int = 0
    failed_queries: int = 0
    total_seconds: float = 0.0
    history: list = field(default_factory=list)


class QservProxy:
    """A client session against one czar."""

    def __init__(self, czar: Czar, local_db: Optional[Database] = None):
        self.czar = czar
        self.local_db = local_db
        self.log = SessionLog()

    def query(self, sql: str, **submit_kwargs) -> QueryResult:
        """Submit one query; raises SqlError/QservAnalysisError on failure.

        Extra keyword arguments (``deadline``, ``allow_partial``) are
        forwarded to :meth:`Czar.submit`.
        """
        t0 = time.perf_counter()
        self.log.queries += 1
        obs_events.emit("query_start", sql=sql)
        try:
            try:
                result = self.czar.submit(sql, **submit_kwargs)
                self.log.distributed_queries += 1
            except QservAnalysisError:
                if self.local_db is None:
                    raise
                table = self.local_db.execute(sql)
                if table is None:
                    raise
                from .czar import QueryStats

                result = QueryResult(table=table, stats=QueryStats())
                self.log.local_queries += 1
        except Exception as e:
            self.log.failed_queries += 1
            obs_events.emit(
                "query_failed", sql=sql, error=f"{type(e).__name__}: {e}"
            )
            raise
        finally:
            elapsed = time.perf_counter() - t0
            self.log.total_seconds += elapsed
            self.log.history.append((sql, elapsed))
        obs_events.emit(
            "query_end",
            sql=sql,
            seconds=round(elapsed, 6),
            rows=result.table.num_rows,
        )
        return result

    def fetch_all(self, sql: str) -> tuple[list[str], list[tuple]]:
        """Column names and row tuples -- the shape a MySQL client sees."""
        result = self.query(sql)
        return result.column_names, result.rows()
