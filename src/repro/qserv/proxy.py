"""The MySQL-proxy-shaped frontend (paper section 5.4).

"A MySQL Proxy wraps the qserv frontend so that queries can be
submitted using any MySQL-compatible client or library."  This module
provides that session surface: submit SQL text, get column names and
rows back, with per-session accounting.  Queries that touch no
partitioned table fall through to a local database when one is
attached, mimicking the proxy passing non-distributed statements to a
plain backend.

Sessions carry an identity (``user`` plus a unique ``session_id``)
that tags every ``query_start`` / ``query_end`` / ``query_failed``
event, so the event log can be sliced per tenant -- which is what the
frontend's fair-share accounting and the operator's "who is hammering
the cluster" question both need.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from ..analysis.races import track_shared
from ..analysis.sanitizer import make_lock
from ..obs import events as obs_events
from ..sql import Database
from .analysis import QservAnalysisError
from .czar import Czar, QueryResult

__all__ = ["QservProxy", "SessionLog", "HISTORY_LIMIT"]

#: Retained ``(sql, seconds)`` history entries per session.  A session
#: is long-lived (think a notebook kernel attached for days), so an
#: unbounded list is a slow memory leak; older entries roll off and are
#: counted in :attr:`SessionLog.history_dropped`.
HISTORY_LIMIT = 256

_session_ids = itertools.count(1)


@track_shared(
    "queries",
    "distributed_queries",
    "local_queries",
    "failed_queries",
    "total_seconds",
    "history",
    "history_dropped",
)
@dataclass
class SessionLog:
    """Per-session query accounting (what a proxy would log).

    A session object is shared: a notebook kernel's helper threads (or
    a connection pool handing the same session around) submit through
    one proxy concurrently, so every counter update goes through the
    locked ``note_*`` / ``record`` methods -- the bare ``+=`` the log
    used to do from :meth:`QservProxy.query` was a lost-update race.
    """

    queries: int = 0
    distributed_queries: int = 0
    local_queries: int = 0
    failed_queries: int = 0
    total_seconds: float = 0.0
    #: Most recent ``(sql, seconds)`` pairs, bounded at HISTORY_LIMIT.
    history: deque = field(default_factory=lambda: deque(maxlen=HISTORY_LIMIT))
    #: Entries that rolled off the bounded history.
    history_dropped: int = 0

    def __post_init__(self):
        self._mu = make_lock("SessionLog._mu")

    def note_submitted(self) -> None:
        with self._mu:
            self.queries += 1

    def note_distributed(self) -> None:
        with self._mu:
            self.distributed_queries += 1

    def note_local(self) -> None:
        with self._mu:
            self.local_queries += 1

    def note_failed(self) -> None:
        with self._mu:
            self.failed_queries += 1

    def record(self, sql: str, seconds: float) -> None:
        with self._mu:
            self.total_seconds += seconds
            if len(self.history) == self.history.maxlen:
                self.history_dropped += 1
            self.history.append((sql, seconds))


class QservProxy:
    """A client session against one czar, tagged with a user identity."""

    def __init__(
        self,
        czar: Czar,
        local_db: Optional[Database] = None,
        user: str = "anon",
        session_id: Optional[str] = None,
    ):
        self.czar = czar
        self.local_db = local_db
        self.user = user
        self.session_id = session_id or f"session-{next(_session_ids)}"
        self.log = SessionLog()

    def query(self, sql: str, **submit_kwargs) -> QueryResult:
        """Submit one query; raises SqlError/QservAnalysisError on failure.

        Extra keyword arguments (``deadline``, ``allow_partial``,
        ``cancel``) are forwarded to :meth:`Czar.submit`.
        """
        t0 = time.perf_counter()
        self.log.note_submitted()
        # Identity flows down to the czar's PROCESSLIST entry, so SHOW
        # PROCESSLIST attributes in-flight queries to their tenant.
        submit_kwargs.setdefault("tenant", self.user)
        submit_kwargs.setdefault("session", self.session_id)
        obs_events.emit(
            "query_start", sql=sql, session=self.session_id, user=self.user
        )
        try:
            try:
                result = self.czar.submit(sql, **submit_kwargs)
                self.log.note_distributed()
            except QservAnalysisError:
                if self.local_db is None:
                    raise
                table = self.local_db.execute(sql)
                if table is None:
                    raise
                from .czar import QueryStats

                result = QueryResult(table=table, stats=QueryStats())
                self.log.note_local()
        except Exception as e:
            self.log.note_failed()
            obs_events.emit(
                "query_failed",
                sql=sql,
                error=f"{type(e).__name__}: {e}",
                session=self.session_id,
                user=self.user,
            )
            raise
        finally:
            elapsed = time.perf_counter() - t0
            self.log.record(sql, elapsed)
        obs_events.emit(
            "query_end",
            sql=sql,
            seconds=round(elapsed, 6),
            rows=result.table.num_rows,
            session=self.session_id,
            user=self.user,
        )
        return result

    def fetch_all(self, sql: str) -> tuple[list[str], list[tuple]]:
        """Column names and row tuples -- the shape a MySQL client sees."""
        result = self.query(sql)
        return result.column_names, result.rows()
