"""Catalog metadata: partitioning facts the czar needs about each table.

The frontend must know which tables are spatially partitioned, which
(ra, dec) columns they are partitioned on (``ra_PS``/``decl_PS`` for
Object, ``ra``/``decl`` for Source in the PT1.1 schema), whether a
table is a *director* table carrying the secondary-index column, and
which tables may be sub-chunked for spatial self-joins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["TablePartitionInfo", "CatalogMetadata"]


@dataclass(frozen=True)
class TablePartitionInfo:
    """Partitioning facts for one table."""

    table: str
    #: Right-ascension / declination column names used for partitioning.
    ra_column: str
    dec_column: str
    #: The column the secondary index maps (objectId); None for tables
    #: that only join to a director table.
    index_column: Optional[str] = None
    #: Director tables can be sub-chunked on the fly for spatial self-joins.
    is_director: bool = False


class CatalogMetadata:
    """The partitioned-catalog registry held by the frontend.

    Unregistered tables are treated as unpartitioned (replicated to
    every worker and referenced without chunk suffixes), matching the
    paper's "Not all tables are partitioned".
    """

    def __init__(self, database: str = "LSST"):
        self.database = database
        self._tables: dict[str, TablePartitionInfo] = {}

    def register(self, info: TablePartitionInfo) -> None:
        self._tables[info.table] = info

    def is_partitioned(self, table: str) -> bool:
        return table in self._tables

    def info(self, table: str) -> TablePartitionInfo:
        if table not in self._tables:
            raise KeyError(f"table {table!r} is not a partitioned table")
        return self._tables[table]

    def partitioned_tables(self) -> list[str]:
        return sorted(self._tables)

    def director_table(self) -> Optional[TablePartitionInfo]:
        for info in self._tables.values():
            if info.is_director:
                return info
        return None

    @classmethod
    def lsst_default(cls, database: str = "LSST") -> "CatalogMetadata":
        """The PT1.1 configuration used throughout the paper's tests."""
        md = cls(database)
        md.register(
            TablePartitionInfo(
                table="Object",
                ra_column="ra_PS",
                dec_column="decl_PS",
                index_column="objectId",
                is_director=True,
            )
        )
        md.register(
            TablePartitionInfo(
                table="Source",
                ra_column="ra",
                dec_column="decl",
                index_column="objectId",
                is_director=False,
            )
        )
        md.register(
            TablePartitionInfo(
                table="ForcedSource",
                ra_column="ra",
                dec_column="decl",
                index_column="objectId",
                is_director=False,
            )
        )
        return md
