"""An interactive SQL shell against an in-process Qserv cluster.

The paper's users talk to Qserv with the stock ``mysql`` command-line
client through the MySQL proxy; this module is the equivalent surface
for the reproduction:

    python -m repro.shell --objects 2000 --workers 4

Meta-commands (backslash-prefixed, like ``mysql``'s):

========  =====================================================
\\d        list tables and their partitioning
\\stats    dispatch statistics of the last query
\\chunks   chunk placement per worker
\\timing   toggle per-query timing output
\\q        quit
========  =====================================================

Observability statements (SQL-flavored, uppercase keywords):

==========================  ===========================================
``SHOW METRICS``             snapshot of the process-global registry
``SHOW METRICS LIKE 'pat'``  the same, filtered by a glob pattern
``SHOW EVENTS [n]``          the most recent structured events
``SHOW CLUSTER``             membership, replication, integrity status
``SHOW PROCESSLIST``         in-flight queries with live chunk progress
``SHOW TENANTS``             per-tenant admission + quota-burn rollup
``SHOW HISTORY <pat> [n]``   recorded metric time series (glob pattern)
``SHOW SLO``                 objective burn rates and firing state
``TRACE <sql>``              run the query traced; print its span tree
``EXPLAIN ANALYZE <sql>``    run traced; print the profiled plan
``SUBMIT JOB <sql>``         enqueue a durable batch job; prints its id
``SHOW JOBS``                the batch job queue (id, status, rows)
``FETCH JOB <id>``           print a finished job's result table
``CANCEL JOB <id>``          cancel a queued or running job
==========================  ===========================================
"""

from __future__ import annotations

import argparse
import logging
import sys
import time

from .data import build_testbed
from .qserv import QservAnalysisError
from .sql import SqlError

__all__ = ["QservShell", "main"]

_log = logging.getLogger(__name__)


def _format_table(column_names, rows, max_rows=40) -> str:
    """mysql-client-style ASCII table."""
    if not column_names:
        return "(no columns)"
    shown = rows[:max_rows]
    cells = [[_fmt(v) for v in row] for row in shown]
    widths = [
        max(len(str(name)), *(len(r[i]) for r in cells)) if cells else len(str(name))
        for i, name in enumerate(column_names)
    ]
    sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    out = [sep]
    out.append(
        "|" + "|".join(f" {str(n).ljust(w)} " for n, w in zip(column_names, widths)) + "|"
    )
    out.append(sep)
    for row in cells:
        out.append("|" + "|".join(f" {v.ljust(w)} " for v, w in zip(row, widths)) + "|")
    out.append(sep)
    if len(rows) > max_rows:
        out.append(f"... {len(rows) - max_rows} more rows")
    out.append(f"{len(rows)} row{'s' if len(rows) != 1 else ''} in set")
    return "\n".join(out)


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:.6g}"
    return str(v)


def _clip(s: str, width: int = 48) -> str:
    return s if len(s) <= width else s[: width - 3] + "..."


class QservShell:
    """Stateful shell logic, separated from the input loop for testing."""

    def __init__(self, testbed):
        self.testbed = testbed
        self.last_result = None
        self.timing = True

    def execute_line(self, line: str) -> str:
        """One input line -> printable output (never raises)."""
        line = line.strip().rstrip(";")
        if not line:
            return ""
        if line.startswith("\\"):
            return self._meta(line)
        upper = line.upper()
        if upper == "SHOW METRICS" or upper.startswith("SHOW METRICS LIKE"):
            return self._show_metrics(line)
        if upper == "SHOW EVENTS" or upper.startswith("SHOW EVENTS "):
            return self._show_events(line)
        if upper == "SHOW CLUSTER":
            return self._show_cluster()
        if upper == "SHOW PROCESSLIST":
            return self._show_processlist()
        if upper == "SHOW TENANTS":
            return self._show_tenants()
        if upper == "SHOW HISTORY" or upper.startswith("SHOW HISTORY "):
            return self._show_history(line)
        if upper == "SHOW SLO":
            return self._show_slo()
        if upper == "EXPLAIN ANALYZE" or upper.startswith("EXPLAIN ANALYZE "):
            return self._explain_analyze(line[len("EXPLAIN ANALYZE") :])
        if upper == "TRACE" or upper.startswith("TRACE "):
            return self._trace_query(line[len("TRACE") :])
        if upper == "SUBMIT JOB" or upper.startswith("SUBMIT JOB "):
            return self._submit_job(line[len("SUBMIT JOB") :])
        if upper == "SHOW JOBS":
            return self._show_jobs()
        if upper.startswith("FETCH JOB"):
            return self._fetch_job(line[len("FETCH JOB") :])
        if upper.startswith("CANCEL JOB"):
            return self._cancel_job(line[len("CANCEL JOB") :])
        t0 = time.perf_counter()
        try:
            result = self.testbed.query(line)
        except (SqlError, QservAnalysisError) as e:
            return f"ERROR: {e}"
        except Exception as e:
            # Anything else is a bug, not a user error: keep the shell
            # alive but leave the traceback in the log.
            _log.exception("unexpected failure running %r", line)
            return f"ERROR: {type(e).__name__}: {e}"
        self.last_result = result
        elapsed = time.perf_counter() - t0
        out = _format_table(result.column_names, result.rows())
        if self.timing:
            out += f" ({elapsed:.3f} sec, {result.stats.chunks_dispatched} chunk queries)"
        return out

    @staticmethod
    def _like_pattern(line: str, keyword: str):
        """The glob from ``... LIKE '<pat>'``, or None / an error string."""
        rest = line[len(keyword) :].strip()
        if not rest:
            return None
        if rest.upper().startswith("LIKE"):
            rest = rest[len("LIKE") :].strip()
        pat = rest.strip("'\"")
        if not pat:
            return f"usage: {keyword} LIKE '<glob>'"
        return pat

    def _show_metrics(self, line: str = "SHOW METRICS") -> str:
        """``SHOW METRICS [LIKE '<glob>']``: the process-global registry."""
        import fnmatch

        from .obs import metrics as obs_metrics

        pattern = self._like_pattern(line, "SHOW METRICS")
        if pattern is not None and pattern.startswith("usage:"):
            return pattern
        snap = obs_metrics.snapshot()
        if pattern is not None:
            snap = {
                name: value
                for name, value in snap.items()
                if fnmatch.fnmatch(name, pattern)
            }
        if not snap:
            if pattern is not None:
                return f"no metrics match {pattern!r}"
            return "no metrics recorded yet"
        rows = []
        for name, value in sorted(snap.items()):
            if isinstance(value, dict):  # histogram summary
                p50, p99 = value.get("p50"), value.get("p99")
                detail = (
                    f"count={value['count']} avg={value['avg']:.6g}s "
                    f"p50={p50:.6g}s p99={p99:.6g}s max={value['max']:.6g}s"
                    if p50 is not None and p99 is not None
                    else f"count={value['count']} avg={value['avg']:.6g}s "
                    f"min={value['min']:.6g}s max={value['max']:.6g}s"
                )
                if value.get("overflow"):
                    detail += f" ({value['overflow']} past top bucket)"
                rows.append((name, detail))
            else:
                rows.append((name, value))
        return _format_table(["metric", "value"], rows, max_rows=len(rows))

    def _show_events(self, line: str) -> str:
        """``SHOW EVENTS [n]``: the most recent structured events."""
        from .obs import events as obs_events

        parts = line.split()
        n = 20
        if len(parts) > 2:
            try:
                n = max(int(parts[2]), 1)
            except ValueError:
                return "usage: SHOW EVENTS [n]"
        events = obs_events.recent(n)
        if not events:
            return "no events recorded yet"
        rows = [
            (
                e.seq,
                time.strftime("%H:%M:%S", time.localtime(e.ts)),
                e.type,
                ", ".join(f"{k}={_clip(_fmt(v))}" for k, v in e.fields.items()),
            )
            for e in events
        ]
        out = _format_table(["seq", "time", "event", "fields"], rows, max_rows=n)
        dropped = obs_events.dropped()
        if dropped:
            oldest = obs_events.oldest_seq()
            out += (
                f"\n({dropped} older event{'s' if dropped != 1 else ''} dropped; "
                f"oldest retained seq {oldest})"
            )
        return out

    def _show_cluster(self) -> str:
        """``SHOW CLUSTER``: the self-healing data plane's status page."""
        from .obs import metrics as obs_metrics
        from .xrd import RedirectError

        tb = self.testbed
        membership = getattr(tb, "membership", None)
        repair = getattr(tb, "repair", None)
        states = membership.states() if membership is not None else {}
        placement = tb.placement
        quarantine = getattr(tb.redirector, "quarantine", None)
        quarantined = quarantine.snapshot() if quarantine is not None else []
        blocked_by_server: dict[str, int] = {}
        for server_name, _path in quarantined:
            blocked_by_server[server_name] = blocked_by_server.get(server_name, 0) + 1
        rows = []
        for name in sorted(set(placement.nodes) | set(states)):
            state = states.get(name, "up")
            if state != "decommissioned":
                try:
                    if not tb.redirector.server(name).up:
                        state = "DOWN"
                except RedirectError:
                    state = "unregistered"
            in_placement = name in placement.nodes
            rows.append(
                (
                    name,
                    state,
                    len(placement.chunks_of(name)) if in_placement else 0,
                    len(placement.chunks_hosted_by(name)) if in_placement else 0,
                    blocked_by_server.get(name, 0),
                )
            )
        out = _format_table(
            ["worker", "state", "primary", "hosted", "quarantined"], rows
        )
        degraded = repair.under_replicated() if repair is not None else {}
        snap = obs_metrics.snapshot()
        out += (
            f"\nreplication target {placement.effective_replication}: "
            f"{len(degraded)} under-replicated chunk"
            f"{'s' if len(degraded) != 1 else ''}, "
            f"{len(quarantined)} quarantined replica"
            f"{'s' if len(quarantined) != 1 else ''}"
        )
        out += (
            f"\nrepair: {snap.get('repair.copies', 0)} copies "
            f"({snap.get('repair.verify.failures', 0)} verify failures); "
            f"scrub: {snap.get('scrub.passes', 0)} passes, "
            f"{snap.get('scrub.tables.checked', 0)} tables checked, "
            f"{snap.get('scrub.mismatches', 0)} mismatches"
        )
        return out

    def _show_processlist(self) -> str:
        """``SHOW PROCESSLIST``: in-flight queries with live progress."""
        from .obs import progress as obs_progress

        entries = obs_progress.PROCESSLIST.entries()
        if not entries:
            return "no queries in flight"
        rows = []
        for e in entries:
            total = e["chunks_total"]
            chunks = f"{e['chunks_done']}/{total if total else '?'}"
            remaining = e["remaining"]
            deadline = "-" if remaining is None else f"{remaining:.1f}s left"
            rows.append(
                (
                    e["qid"],
                    e["tenant"],
                    e["session"] or "-",
                    e["stage"],
                    chunks,
                    e["bytes"],
                    f"{e['elapsed']:.3f}s",
                    deadline,
                    _clip(e["sql"]),
                )
            )
        return _format_table(
            ["qid", "tenant", "session", "stage", "chunks", "bytes",
             "elapsed", "deadline", "sql"],
            rows,
            max_rows=len(rows),
        )

    def _show_tenants(self) -> str:
        """``SHOW TENANTS``: admission accounting plus live in-flight load."""
        from .obs import progress as obs_progress

        frontend = getattr(self.testbed, "frontend", None)
        if frontend is None:
            return "ERROR: no frontend attached to this testbed"
        snap = frontend.admission.snapshot()
        inflight = obs_progress.PROCESSLIST.by_tenant()
        names = sorted(set(snap) | set(inflight))
        if not names:
            return "no tenants seen yet"
        rows = []
        for name in names:
            t = snap.get(name, {})
            live = inflight.get(name, [])
            burn = t.get("quota_burn")
            rows.append(
                (
                    name,
                    t.get("running", 0),
                    t.get("queued", 0),
                    len(live),
                    sum(e["chunks_done"] for e in live),
                    t.get("completed", 0),
                    t.get("shed", 0),
                    t.get("rows_used", 0),
                    t.get("bytes_used", 0),
                    "-" if burn is None else f"{burn * 100:.1f}%",
                )
            )
        return _format_table(
            ["tenant", "running", "queued", "inflight", "chunks done",
             "completed", "shed", "rows used", "bytes used", "quota burn"],
            rows,
            max_rows=len(rows),
        )

    def _show_history(self, line: str) -> str:
        """``SHOW HISTORY <metric|glob> [n]``: recorded time series."""
        import shlex

        from .obs import timeseries as obs_timeseries

        try:
            parts = shlex.split(line)
        except ValueError:
            parts = line.split()
        args = parts[2:]
        n = 10
        if args and args[-1].isdigit():
            n = max(int(args.pop()), 1)
        pattern = args[0].strip("'\"") if args else "*"
        recorder = obs_timeseries.RECORDER
        names = recorder.names(pattern)
        if not names:
            hint = "" if recorder.ticks else (
                " (recorder idle; set REPRO_HISTORY=<seconds> or call "
                "RECORDER.start())"
            )
            return f"no recorded series match {pattern!r}{hint}"
        rows = []
        for name in names:
            points = recorder.get(name, n)
            if not points:
                continue
            latest = points[-1]
            spark = " ".join(f"{p.value:.4g}" for p in points)
            rows.append((name, recorder.series_kind(name), len(points),
                         f"{latest.value:.6g}", spark))
        return _format_table(
            ["series", "kind", "points", "latest", f"last {n}"],
            rows,
            max_rows=len(rows),
        )

    def _show_slo(self) -> str:
        """``SHOW SLO``: objective burn rates and firing state."""
        frontend = getattr(self.testbed, "frontend", None)
        if frontend is None or not getattr(frontend, "slo", None):
            return "ERROR: no frontend (and so no SLO monitor) attached"
        snap = frontend.slo.snapshot()
        if not snap:
            return "no SLO objectives declared"
        rows = [
            (
                s["objective"],
                s["kind"],
                f"{s['budget'] * 100:g}%",
                f"{s['burn_fast']:.2f}x",
                f"{s['burn_slow']:.2f}x",
                "FIRING" if s["firing"] else "ok",
            )
            for s in snap
        ]
        out = _format_table(
            ["objective", "kind", "budget", "burn (fast)", "burn (slow)", "state"],
            rows,
            max_rows=len(rows),
        )
        out += f"\nadmission pressure {frontend.slo.pressure():.2f}"
        return out

    def _explain_analyze(self, sql: str) -> str:
        """``EXPLAIN ANALYZE <sql>``: run traced; print the profiled plan."""
        sql = sql.strip().rstrip(";")
        if not sql:
            return "usage: EXPLAIN ANALYZE <SELECT ...>"
        try:
            result = self.testbed.proxy.query(sql, trace=True)
        except (SqlError, QservAnalysisError) as e:
            return f"ERROR: {e}"
        except Exception as e:
            _log.exception("unexpected failure profiling %r", sql)
            return f"ERROR: {type(e).__name__}: {e}"
        self.last_result = result
        return result.stats.profile.pretty()

    def _trace_query(self, sql: str) -> str:
        """``TRACE <sql>``: run the query traced; print its span tree."""
        sql = sql.strip().rstrip(";")
        if not sql:
            return "usage: TRACE <SELECT ...>"
        try:
            result = self.testbed.proxy.query(sql, trace=True)
        except (SqlError, QservAnalysisError) as e:
            return f"ERROR: {e}"
        except Exception as e:
            _log.exception("unexpected failure tracing %r", sql)
            return f"ERROR: {type(e).__name__}: {e}"
        self.last_result = result
        trace = result.stats.trace
        if trace is None:
            return "no trace captured (query ran outside the czar)"
        header = (
            f"trace {trace.trace_id}: {len(trace.spans)} spans, "
            f"{result.stats.chunks_dispatched} chunk queries, "
            f"{len(result.rows())} result rows, "
            f"{result.stats.elapsed_seconds:.3f}s"
        )
        return header + "\n" + trace.pretty()

    def _submit_job(self, sql: str) -> str:
        """``SUBMIT JOB <sql>``: enqueue a durable batch job."""
        sql = sql.strip().rstrip(";")
        if not sql:
            return "usage: SUBMIT JOB <SELECT ...>"
        frontend = getattr(self.testbed, "frontend", None)
        if frontend is None:
            return "ERROR: no frontend attached to this testbed"
        try:
            job_id = frontend.submit_job(sql, user="shell")
        except Exception as e:  # noqa: BLE001 - shed/validation errors reach the user
            return f"ERROR: {type(e).__name__}: {e}"
        return f"accepted {job_id} (poll with SHOW JOBS, results with FETCH JOB {job_id})"

    def _show_jobs(self) -> str:
        """``SHOW JOBS``: the batch queue, most recent last."""
        frontend = getattr(self.testbed, "frontend", None)
        if frontend is None:
            return "ERROR: no frontend attached to this testbed"
        jobs = frontend.list_jobs()
        if not jobs:
            return "no jobs submitted yet"
        rows = [
            (
                j["job_id"],
                j["user"],
                j["status"] + (" (recovered)" if j["recovered"] else ""),
                j["rows"],
                j["table"],
                _clip(j["error"] or j["sql"]),
            )
            for j in jobs
        ]
        return _format_table(
            ["job", "user", "status", "rows", "mydb table", "detail"], rows
        )

    def _fetch_job(self, arg: str) -> str:
        """``FETCH JOB <id>``: print a finished job's result table."""
        job_id = arg.strip()
        frontend = getattr(self.testbed, "frontend", None)
        if frontend is None:
            return "ERROR: no frontend attached to this testbed"
        if not job_id:
            return "usage: FETCH JOB <job-id>"
        try:
            table = frontend.fetch_job(job_id)
        except Exception as e:  # noqa: BLE001 - unknown/unfinished jobs reach the user
            return f"ERROR: {type(e).__name__}: {e}"
        return _format_table(table.column_names, table.rows())

    def _cancel_job(self, arg: str) -> str:
        """``CANCEL JOB <id>``: cancel a queued or running job."""
        job_id = arg.strip()
        frontend = getattr(self.testbed, "frontend", None)
        if frontend is None:
            return "ERROR: no frontend attached to this testbed"
        if not job_id:
            return "usage: CANCEL JOB <job-id>"
        try:
            cancelled = frontend.cancel_job(job_id)
        except Exception as e:  # noqa: BLE001 - unknown jobs reach the user
            return f"ERROR: {type(e).__name__}: {e}"
        return f"{job_id} {'cancel requested' if cancelled else 'already finished'}"

    def _meta(self, line: str) -> str:
        cmd = line.split()[0]
        if cmd in ("\\q", "\\quit"):
            raise EOFError
        if cmd == "\\d":
            rows = []
            md = self.testbed.metadata
            for name in sorted(self.testbed.tables):
                if md.is_partitioned(name):
                    info = md.info(name)
                    extra = f"partitioned on ({info.ra_column}, {info.dec_column})"
                    if info.is_director:
                        extra += ", director"
                else:
                    extra = "replicated"
                rows.append((name, self.testbed.tables[name].num_rows, extra))
            return _format_table(["table", "rows", "partitioning"], rows)
        if cmd == "\\stats":
            if self.last_result is None:
                return "no query yet"
            s = self.last_result.stats
            rows = [
                ("chunks dispatched", s.chunks_dispatched),
                ("sub-chunk statements", s.sub_chunk_statements),
                ("workers used", len(s.workers_used)),
                ("bytes dispatched", s.bytes_dispatched),
                ("bytes collected", s.bytes_collected),
                ("rows merged", s.rows_merged),
                ("wire format", s.wire_format or "n/a"),
                ("plan cache hit", bool(s.plan_cache_hits)),
                ("secondary index", s.used_secondary_index),
                ("region restriction", s.used_region_restriction),
                ("chunks retried", s.chunks_retried),
                ("chunks hedged", f"{s.chunks_hedged} ({s.hedges_won} won)"),
                ("chunks timed out", s.chunks_timed_out),
                ("elapsed (s)", round(s.elapsed_seconds, 4)),
            ]
            if s.partial_result:
                rows.append(("PARTIAL: failed chunks", sorted(s.failed_chunks)))
            return _format_table(["metric", "value"], rows)
        if cmd == "\\chunks":
            placement = self.testbed.placement
            rows = [
                (node, len(placement.chunks_of(node)), len(placement.chunks_hosted_by(node)))
                for node in placement.nodes
            ]
            return _format_table(["worker", "primary chunks", "hosted chunks"], rows)
        if cmd == "\\timing":
            self.timing = not self.timing
            return f"timing {'on' if self.timing else 'off'}"
        if cmd == "\\health":
            from .qserv.admin import ClusterAdmin

            admin = ClusterAdmin(
                self.testbed.placement, self.testbed.redirector, self.testbed.workers
            )
            h = admin.health()
            breaker = self.testbed.czar.health
            rows = [
                (n.name, "up" if n.up else "DOWN", breaker.state(n.name),
                 n.primary_chunks, n.hosted_chunks, n.queries_executed)
                for n in h.nodes
            ]
            out = _format_table(
                ["worker", "state", "breaker", "primary", "hosted", "queries"], rows
            )
            out += (
                f"\ncluster: {'healthy' if h.healthy else 'DEGRADED'}, "
                f"{len(h.dark_chunks)} dark chunks, "
                f"{len(h.under_replicated)} under-replicated, "
                f"imbalance {h.imbalance:.2f}"
            )
            return out
        if cmd == "\\explain":
            sql = line[len("\\explain") :].strip().rstrip(";")
            if not sql:
                return "usage: \\explain <SELECT ...>"
            try:
                return self.testbed.czar.explain(sql).summary()
            except (SqlError, QservAnalysisError) as e:
                return f"ERROR: {e}"
        return (
            f"unknown command {cmd!r} "
            "(try \\d, \\stats, \\chunks, \\health, \\explain, \\timing, \\q)"
        )


def main(argv=None):
    parser = argparse.ArgumentParser(description="Interactive Qserv shell")
    parser.add_argument("--objects", type=int, default=2000, help="objects to synthesize")
    parser.add_argument("--workers", type=int, default=4, help="worker nodes")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--replication", type=int, default=1, help="chunk replicas per node"
    )
    parser.add_argument("--stripes", type=int, default=18)
    parser.add_argument("--sub-stripes", type=int, default=6)
    parser.add_argument(
        "--execute",
        "-e",
        metavar="SQL",
        help="execute one statement and exit (like mysql -e)",
    )
    args = parser.parse_args(argv)

    print(f"Building {args.workers}-worker cluster with {args.objects} objects...")
    tb = build_testbed(
        num_workers=args.workers,
        num_objects=args.objects,
        seed=args.seed,
        replication=args.replication,
        num_stripes=args.stripes,
        num_sub_stripes=args.sub_stripes,
    )
    shell = QservShell(tb)
    if args.execute is not None:
        print(shell.execute_line(args.execute))
        tb.shutdown()
        return 0
    print(
        f"Ready: {len(tb.placement.chunk_ids)} chunks on {args.workers} workers. "
        "Type SQL, or \\q to quit."
    )
    while True:
        try:
            line = input("qserv> ")
        except (EOFError, KeyboardInterrupt):
            print()
            break
        try:
            out = shell.execute_line(line)
        except EOFError:
            break
        if out:
            print(out)
    tb.shutdown()
    return 0


if __name__ == "__main__":
    sys.exit(main())
