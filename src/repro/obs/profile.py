"""EXPLAIN ANALYZE: a profiled execution report for one query.

``\\explain`` shows the czar's *plan*; this module shows what actually
happened.  The czar maintains one :class:`ChunkProfile` per chunk in
exactly the code paths that update ``QueryStats`` -- same lock, same
increments -- so the per-chunk rows/bytes/retry columns sum *by
construction* to the query's stats and to the global metric deltas (the
accounting-identity test pins this).  The span tree, when the query was
traced, only *enriches* the report (worker-side queue wait, execute
time, rows scanned, kernel vs interpreter); accounting never depends on
tracing being on.

:func:`build_profile` assembles the :class:`QueryProfile` that rides on
``result.stats.profile``; :meth:`QueryProfile.pretty` renders the
annotated plan the shell's ``EXPLAIN ANALYZE <sql>`` prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["ChunkProfile", "QueryProfile", "build_profile"]


@dataclass
class ChunkProfile:
    """What one chunk query cost, attempt by attempt.

    Primary fields are maintained by the czar under its merge lock;
    ``queue_wait`` / ``execute_seconds`` / ``rows_scanned`` /
    ``scan_bytes`` / ``kernel`` arrive later from the winning attempt's
    worker-side spans and stay ``None`` for untraced queries.
    """

    chunk_id: int
    worker: str = ""
    subchunks: int = 0
    attempts: int = 0
    retries: int = 0
    hedges: int = 0
    hedges_won: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    rows: int = 0
    wire_format: str = ""
    seconds: float = 0.0
    #: 'pending', 'ok', 'failed', 'timeout', or 'cancelled'.
    status: str = "pending"
    # -- trace-enriched (None when the query was not traced) --
    queue_wait: Optional[float] = None
    execute_seconds: Optional[float] = None
    rows_scanned: Optional[int] = None
    scan_bytes: Optional[int] = None
    kernel: Optional[bool] = None

    def as_dict(self) -> dict:
        return {
            "chunk_id": self.chunk_id,
            "worker": self.worker,
            "subchunks": self.subchunks,
            "attempts": self.attempts,
            "retries": self.retries,
            "hedges": self.hedges,
            "hedges_won": self.hedges_won,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "rows": self.rows,
            "wire_format": self.wire_format,
            "seconds": self.seconds,
            "status": self.status,
            "queue_wait": self.queue_wait,
            "execute_seconds": self.execute_seconds,
            "rows_scanned": self.rows_scanned,
            "scan_bytes": self.scan_bytes,
            "kernel": self.kernel,
        }


@dataclass
class QueryProfile:
    """The assembled EXPLAIN ANALYZE report."""

    sql: str
    chunks: list = field(default_factory=list)
    plan_seconds: float = 0.0
    merge_seconds: float = 0.0
    elapsed_seconds: float = 0.0
    rows_merged: int = 0
    wire_format: str = ""
    partial_result: bool = False
    status: str = "ok"
    plan_cache_hit: bool = False
    used_secondary_index: bool = False
    used_region_restriction: bool = False
    traced: bool = False

    def totals(self) -> dict:
        """Sums over the per-chunk rows -- what the identity test checks."""
        done = [c for c in self.chunks if c.status == "ok"]
        return {
            "chunks": len(self.chunks),
            "chunks_ok": len(done),
            "rows": sum(c.rows for c in done),
            "bytes_sent": sum(c.bytes_sent for c in done),
            "bytes_received": sum(c.bytes_received for c in done),
            "retries": sum(c.retries for c in self.chunks),
            "hedges": sum(c.hedges for c in self.chunks),
            "hedges_won": sum(c.hedges_won for c in self.chunks),
            "timeouts": sum(1 for c in self.chunks if c.status == "timeout"),
            "cancelled": sum(1 for c in self.chunks if c.status == "cancelled"),
            "failed": sum(1 for c in self.chunks if c.status == "failed"),
            "subchunk_statements": sum(c.subchunks for c in done),
        }

    def pretty(self, max_chunks: int = 32) -> str:
        """The annotated plan EXPLAIN ANALYZE prints."""
        t = self.totals()
        coverage = (
            "secondary-index"
            if self.used_secondary_index
            else "region" if self.used_region_restriction else "full-sky"
        )
        lines = [
            f"query: {self.sql}",
            f"status: {self.status}"
            + (" (partial result)" if self.partial_result else ""),
            f"elapsed: {self.elapsed_seconds * 1e3:.2f} ms"
            f"  (plan {self.plan_seconds * 1e3:.2f} ms"
            f", merge {self.merge_seconds * 1e3:.2f} ms"
            f"{', plan cache hit' if self.plan_cache_hit else ''})",
            f"coverage: {coverage}"
            f"  chunks: {t['chunks_ok']}/{t['chunks']} ok"
            + (f", {t['timeouts']} timed out" if t["timeouts"] else "")
            + (f", {t['cancelled']} cancelled" if t["cancelled"] else "")
            + (f", {t['failed']} failed" if t["failed"] else ""),
            f"rows merged: {self.rows_merged}"
            f"  bytes: {t['bytes_sent']} sent / {t['bytes_received']} received"
            f"  wire: {self.wire_format or 'n/a'}",
            f"retries: {t['retries']}  hedges: {t['hedges']}"
            f" ({t['hedges_won']} won)",
        ]
        if not self.traced:
            lines.append(
                "worker-side columns unavailable: query was not traced "
                "(EXPLAIN ANALYZE forces tracing; profiles of untraced "
                "submits carry accounting columns only)"
            )
        header = (
            f"{'chunk':>6} {'worker':<12} {'st':<9} {'rows':>8} "
            f"{'bytes':>9} {'try':>3} {'hedge':>5} {'t_ms':>8} "
            f"{'wait_ms':>8} {'exec_ms':>8} {'scanned':>8} {'kern':>4}"
        )
        lines.append(header)
        shown = self.chunks[:max_chunks]
        for c in shown:

            def _ms(v):
                return f"{v * 1e3:.2f}" if v is not None else "-"

            lines.append(
                f"{c.chunk_id:>6} {c.worker or '-':<12} {c.status:<9} "
                f"{c.rows:>8} {c.bytes_received:>9} {c.attempts:>3} "
                f"{c.hedges:>5} {_ms(c.seconds) if c.seconds else '-':>8} "
                f"{_ms(c.queue_wait):>8} {_ms(c.execute_seconds):>8} "
                f"{c.rows_scanned if c.rows_scanned is not None else '-':>8} "
                f"{('yes' if c.kernel else 'no') if c.kernel is not None else '-':>4}"
            )
        if len(self.chunks) > len(shown):
            lines.append(f"... {len(self.chunks) - len(shown)} more chunks")
        return "\n".join(lines)


#: Span attributes copied from a winning worker.execute span onto the
#: chunk profile, in (span attr, profile field) pairs.
_SPAN_FIELDS = (
    ("queue_wait", "queue_wait"),
    ("rows_scanned", "rows_scanned"),
    ("scan_bytes", "scan_bytes"),
    ("kernel", "kernel"),
)


def _enrich_from_trace(chunks: list, trace) -> None:
    """Attach worker-side timing/scan columns from the span tree.

    Only spans with ``status == "ok"`` contribute: a chunk that was
    retried or hedged has several ``worker.execute`` spans, and the
    cancelled/failed ones describe work that never reached the merge.
    """
    by_chunk = {c.chunk_id: c for c in chunks}
    for sp in trace.spans:
        if sp.name != "worker.execute" or sp.status != "ok":
            continue
        chunk = by_chunk.get(sp.attrs.get("chunk"))
        if chunk is None:
            continue
        if chunk.worker and sp.attrs.get("worker") not in ("", None, chunk.worker):
            continue  # a losing replica's span for the same chunk
        chunk.execute_seconds = sp.duration
        for attr, fld in _SPAN_FIELDS:
            if attr in sp.attrs:
                setattr(chunk, fld, sp.attrs[attr])


def build_profile(stats, sql: str = "", status: str = "ok") -> QueryProfile:
    """Assemble the EXPLAIN ANALYZE report from one query's stats.

    ``stats`` is a :class:`~repro.qserv.czar.QueryStats`; its
    ``chunk_profiles`` list is the accounting source of truth, and its
    ``trace`` (when the query was sampled) contributes the worker-side
    columns.
    """
    chunks = sorted(
        getattr(stats, "chunk_profiles", []) or [], key=lambda c: c.chunk_id
    )
    trace = getattr(stats, "trace", None)
    if trace is not None:
        _enrich_from_trace(chunks, trace)
    return QueryProfile(
        sql=" ".join(sql.split()),
        chunks=chunks,
        plan_seconds=getattr(stats, "plan_seconds", 0.0),
        merge_seconds=getattr(stats, "merge_seconds", 0.0),
        elapsed_seconds=stats.elapsed_seconds,
        rows_merged=stats.rows_merged,
        wire_format=stats.wire_format,
        partial_result=stats.partial_result,
        status=status,
        plan_cache_hit=bool(stats.plan_cache_hits),
        used_secondary_index=stats.used_secondary_index,
        used_region_restriction=stats.used_region_restriction,
        traced=trace is not None,
    )
