"""Observability for the czar/xrd/worker pipeline (paper section 4.1/5).

The paper's czar carries a "query management" duty -- tracking every
in-flight query from analysis through dispatch, merge, and delivery.
This package is that duty made inspectable, in three parts:

- :mod:`repro.obs.trace` -- per-query span trees with czar-to-worker
  context propagation (the ``-- TRACE:`` chunk-query header) and
  Chrome/Perfetto trace-event JSON export;
- :mod:`repro.obs.metrics` -- a hierarchy of named counters, gauges,
  and fixed-bucket histograms (per-query -> per-czar -> process-global);
- :mod:`repro.obs.events` -- a ring-buffered log of typed operational
  records (retries, hedges, breaker transitions, shutdowns).

All three are near-zero-cost when idle: tracing returns a shared no-op
span unless enabled (``REPRO_TRACE=1``, sampling via
``REPRO_TRACE_SAMPLE``), metric updates are one uncontended lock per
registry level, and the event ring is bounded.  The shell surfaces the
layer as ``SHOW METRICS``, ``SHOW EVENTS``, and ``TRACE <sql>``.
"""

from . import events, metrics, trace

__all__ = ["events", "metrics", "trace"]
