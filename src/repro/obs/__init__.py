"""Observability for the czar/xrd/worker pipeline (paper section 4.1/5).

The paper's czar carries a "query management" duty -- tracking every
in-flight query from analysis through dispatch, merge, and delivery.
This package is that duty made inspectable, in three parts:

- :mod:`repro.obs.trace` -- per-query span trees with czar-to-worker
  context propagation (the ``-- TRACE:`` chunk-query header) and
  Chrome/Perfetto trace-event JSON export;
- :mod:`repro.obs.metrics` -- a hierarchy of named counters, gauges,
  and fixed-bucket histograms (per-query -> per-czar -> process-global);
- :mod:`repro.obs.events` -- a ring-buffered log of typed operational
  records (retries, hedges, breaker transitions, shutdowns).

On top of the record-keeping tier sits the *operational* tier -- what
an operator of the multi-tenant frontend works with:

- :mod:`repro.obs.profile` -- EXPLAIN ANALYZE: per-chunk resource
  accounting assembled with ``QueryStats`` and enriched from the span
  tree, riding on ``result.stats.profile``;
- :mod:`repro.obs.progress` -- the in-flight query registry behind
  ``SHOW PROCESSLIST`` / ``SHOW TENANTS``;
- :mod:`repro.obs.timeseries` -- a bounded metrics-history recorder
  (``REPRO_HISTORY=<seconds>``), with Prometheus text exposition and a
  Perfetto counter-track export;
- :mod:`repro.obs.slo` -- declared latency/error objectives, fast/slow
  burn rates computed from the history recorder, ``slo_burn`` events,
  and the admission controller's overload-pricing pressure signal.

All layers are near-zero-cost when idle: tracing returns a shared no-op
span unless enabled (``REPRO_TRACE=1``, sampling via
``REPRO_TRACE_SAMPLE``), metric updates are one uncontended lock per
registry level, the event ring is bounded, and the history recorder
only runs when started.  The shell surfaces the layer as ``SHOW
METRICS``, ``SHOW EVENTS``, ``SHOW PROCESSLIST``, ``SHOW TENANTS``,
``SHOW HISTORY``, ``TRACE <sql>``, and ``EXPLAIN ANALYZE <sql>``.
"""

from . import events, metrics, profile, progress, slo, timeseries, trace

__all__ = [
    "events",
    "metrics",
    "profile",
    "progress",
    "slo",
    "timeseries",
    "trace",
]
