"""Live query progress: the registry behind ``SHOW PROCESSLIST``.

Traces and metrics describe queries that *finished*; an operator
staring at a stuck cluster needs the ones that haven't.  The czar
registers every in-flight query here at submit time and updates it at
the same points it updates :class:`~repro.qserv.czar.QueryStats`:
stage transitions (``plan`` -> ``dispatch`` -> ``merge``), one
:meth:`QueryProgress.chunk_done` per merged chunk, and a guaranteed
:meth:`~ProgressRegistry.finish` in the submit ``finally`` -- so
entries disappear on completion, cancellation, failure, and
crash-recovered batch re-runs alike (the re-run is just another
submit).

Each entry also mirrors itself into two global gauges
(``czar.queries.inflight``, per-tenant ``czar.inflight.<tenant>``) so
the history recorder can chart cluster load over time without walking
the registry.
"""

from __future__ import annotations

import itertools
import time
from typing import Optional

from ..analysis.sanitizer import make_lock
from . import metrics as obs_metrics

__all__ = ["QueryProgress", "ProgressRegistry", "PROCESSLIST"]

_query_ids = itertools.count(1)

#: Stages a query moves through, in order (for display).
STAGES = ("queued", "plan", "dispatch", "merge", "done")


class QueryProgress:
    """One in-flight query's live counters.

    Mutators take the entry's own lock and nothing else; the czar may
    call them while holding its merge lock (consistent outer->inner
    order), and shell threads snapshot concurrently.
    """

    __slots__ = (
        "qid",
        "sql",
        "tenant",
        "session",
        "started",
        "started_wall",
        "deadline_seconds",
        "_stage",
        "_chunks_total",
        "_chunks_done",
        "_bytes",
        "_rows",
        "_retries",
        "_lock",
        "_clock",
        "_registry",
    )

    def __init__(
        self,
        sql: str,
        tenant: str = "",
        session: str = "",
        deadline_seconds: Optional[float] = None,
        clock=time.monotonic,
        registry: Optional["ProgressRegistry"] = None,
    ):
        self.qid = next(_query_ids)
        self.sql = " ".join(sql.split())
        self.tenant = tenant or "anon"
        self.session = session or ""
        self._clock = clock
        self.started = clock()
        self.started_wall = time.time()
        self.deadline_seconds = deadline_seconds
        self._stage = "queued"
        self._chunks_total = 0
        self._chunks_done = 0
        self._bytes = 0
        self._rows = 0
        self._retries = 0
        self._lock = make_lock("obs.QueryProgress._lock")
        self._registry = registry

    # -- czar-side updates --------------------------------------------------

    def stage(self, name: str) -> "QueryProgress":
        with self._lock:
            self._stage = name
        return self

    def set_total(self, chunks: int) -> "QueryProgress":
        with self._lock:
            self._chunks_total = int(chunks)
        return self

    def chunk_done(self, bytes_received: int = 0, retries: int = 0) -> "QueryProgress":
        with self._lock:
            self._chunks_done += 1
            self._bytes += int(bytes_received)
            self._retries += int(retries)
        return self

    def note_rows(self, rows: int) -> "QueryProgress":
        with self._lock:
            self._rows += int(rows)
        return self

    def finish(self) -> None:
        """Remove this entry from its registry (idempotent)."""
        registry, self._registry = self._registry, None
        if registry is not None:
            registry._remove(self)

    # -- observer side ------------------------------------------------------

    @property
    def chunks_done(self) -> int:
        with self._lock:
            return self._chunks_done

    @property
    def current_stage(self) -> str:
        with self._lock:
            return self._stage

    def snapshot(self) -> dict:
        """A point-in-time view (what one PROCESSLIST row renders)."""
        with self._lock:
            stage = self._stage
            total, done = self._chunks_total, self._chunks_done
            nbytes, rows, retries = self._bytes, self._rows, self._retries
        elapsed = self._clock() - self.started
        remaining = (
            self.deadline_seconds - elapsed
            if self.deadline_seconds is not None
            else None
        )
        return {
            "qid": self.qid,
            "tenant": self.tenant,
            "session": self.session,
            "stage": stage,
            "chunks_done": done,
            "chunks_total": total,
            "bytes": nbytes,
            "rows": rows,
            "retries": retries,
            "elapsed": elapsed,
            "deadline": self.deadline_seconds,
            "remaining": remaining,
            "sql": self.sql,
        }

    def __repr__(self):
        return (
            f"QueryProgress(#{self.qid} {self.tenant} {self.current_stage} "
            f"{self.chunks_done} chunks)"
        )


class ProgressRegistry:
    """The set of currently in-flight queries, snapshot-able at any time."""

    def __init__(self):
        self._lock = make_lock("obs.ProgressRegistry._lock")
        self._entries: dict[int, QueryProgress] = {}

    def begin(
        self,
        sql: str,
        tenant: str = "",
        session: str = "",
        deadline_seconds: Optional[float] = None,
        clock=time.monotonic,
    ) -> QueryProgress:
        entry = QueryProgress(
            sql,
            tenant=tenant,
            session=session,
            deadline_seconds=deadline_seconds,
            clock=clock,
            registry=self,
        )
        with self._lock:
            self._entries[entry.qid] = entry
        obs_metrics.gauge("czar.queries.inflight").add(1)
        obs_metrics.gauge(f"czar.inflight.{entry.tenant}").add(1)
        return entry

    def _remove(self, entry: QueryProgress) -> None:
        with self._lock:
            removed = self._entries.pop(entry.qid, None)
        if removed is not None:
            obs_metrics.gauge("czar.queries.inflight").add(-1)
            obs_metrics.gauge(f"czar.inflight.{entry.tenant}").add(-1)

    def get(self, qid: int) -> Optional[QueryProgress]:
        with self._lock:
            return self._entries.get(qid)

    def entries(self) -> list[dict]:
        """Snapshots of every in-flight query, oldest first."""
        with self._lock:
            live = sorted(self._entries.values(), key=lambda e: e.qid)
        return [e.snapshot() for e in live]

    def by_tenant(self) -> dict[str, list[dict]]:
        out: dict[str, list[dict]] = {}
        for snap in self.entries():
            out.setdefault(snap["tenant"], []).append(snap)
        return out

    def clear(self) -> None:
        """Drop every entry (tests); gauges are rebalanced."""
        with self._lock:
            live = list(self._entries.values())
        for entry in live:
            entry.finish()

    def __len__(self):
        with self._lock:
            return len(self._entries)


#: The process-global in-flight registry ``SHOW PROCESSLIST`` renders.
PROCESSLIST = ProgressRegistry()
