"""SLO monitoring: declared objectives, burn rates, admission pressure.

An objective declares a tolerable failure budget -- "p99 query latency
under 500 ms, 99% of the time" or "shed fewer than 5% of requests" --
and the monitor answers the operator question metrics alone don't:
*are we eating the budget faster than we can afford?*

The mechanism is the multi-window burn rate: each recorder tick
classifies the interval's observations into good/bad, the monitor keeps
a bounded ring of ``(ts, bad, total)`` samples per objective, and burn
is the windowed violation fraction divided by the budget::

    burn = (bad_window / total_window) / budget

``burn == 1`` exactly exhausts the budget over time; a *fast* window
(default 60 s) over a high threshold catches sudden cliffs, a *slow*
window (default 600 s) over a low threshold catches smolder.  When
either fires the monitor emits an ``slo_burn`` event (and ``slo_clear``
on recovery) and raises its cached :meth:`SloMonitor.pressure`, which
the admission controller folds into ``retry_after`` pricing -- overload
hints grow when the cluster is *actually* missing its objective, not
merely when a queue is deep.

The monitor is a pure listener on :class:`~repro.obs.timeseries.
HistoryRecorder` ticks: it reads delta dicts, touches no locks but its
own, and is therefore safe to consult from under the admission
controller's lock.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Optional

from ..analysis.sanitizer import make_lock
from . import events as obs_events
from . import metrics as obs_metrics

__all__ = ["Objective", "SloMonitor", "DEFAULT_OBJECTIVES"]


@dataclass(frozen=True)
class Objective:
    """One declared service-level objective.

    ``kind="latency"`` reads a histogram: an interval observation is
    *bad* when it lands in a bucket wholly above ``threshold`` seconds
    (bucket resolution decides; pick a threshold on a bucket edge for
    exactness).  ``kind="ratio"`` reads two counters: ``metric`` counts
    bad outcomes (e.g. ``frontend.shed``) and ``good_metric`` good ones
    (e.g. ``frontend.admitted``).  ``budget`` is the tolerated bad
    fraction -- 0.01 means 1% of observations may violate.
    """

    name: str
    kind: str  # 'latency' | 'ratio'
    metric: str
    threshold: float = 0.0
    good_metric: str = ""
    budget: float = 0.01

    def __post_init__(self):
        if self.kind not in ("latency", "ratio"):
            raise ValueError(f"unknown objective kind {self.kind!r}")
        if not 0.0 < self.budget <= 1.0:
            raise ValueError("budget must be in (0, 1]")
        if self.kind == "ratio" and not self.good_metric:
            raise ValueError("ratio objectives need a good_metric")

    def classify(self, deltas: dict) -> tuple[int, int]:
        """``(bad, total)`` for one recorder tick's deltas."""
        if self.kind == "ratio":
            bad = int(deltas.get(self.metric, 0) or 0)
            good = int(deltas.get(self.good_metric, 0) or 0)
            return bad, bad + good
        hist = deltas.get(self.metric)
        if not isinstance(hist, dict):
            return 0, 0
        total = int(hist.get("count", 0))
        if total <= 0:
            return 0, 0
        bounds = hist.get("bounds", ())
        buckets = hist.get("buckets", ())
        good = 0
        for i, count in enumerate(buckets):
            if i < len(bounds) and bounds[i] <= self.threshold:
                good += count
        return total - good, total


#: The paper-shaped defaults: interactive (LV1-style) latency and the
#: frontend's shed ratio.  Callers declare their own for real numbers.
DEFAULT_OBJECTIVES = (
    Objective(
        name="query-latency-p99",
        kind="latency",
        metric="czar.query.seconds",
        threshold=0.5,
        budget=0.01,
    ),
    Objective(
        name="shed-ratio",
        kind="ratio",
        metric="frontend.shed",
        good_metric="frontend.admitted",
        budget=0.05,
    ),
)


class _ObjectiveState:
    __slots__ = ("objective", "samples", "firing", "burn_fast", "burn_slow")

    def __init__(self, objective: Objective, capacity: int):
        self.objective = objective
        #: ``(ts, bad, total)`` per tick, bounded.
        self.samples: deque = deque(maxlen=capacity)
        self.firing = False
        self.burn_fast = 0.0
        self.burn_slow = 0.0


class SloMonitor:
    """Evaluates objectives against recorder ticks; caches pressure."""

    def __init__(
        self,
        objectives=DEFAULT_OBJECTIVES,
        recorder=None,
        fast_window: float = 60.0,
        slow_window: float = 600.0,
        fast_burn: float = 2.0,
        slow_burn: float = 1.0,
        max_pressure: float = 4.0,
        clock=time.time,
    ):
        self.objectives = tuple(objectives)
        self.fast_window = float(fast_window)
        self.slow_window = float(slow_window)
        self.fast_burn = float(fast_burn)
        self.slow_burn = float(slow_burn)
        self.max_pressure = float(max_pressure)
        self._clock = clock
        self._lock = make_lock("obs.SloMonitor._lock")
        capacity = max(int(self.slow_window) + 16, 64)
        self._states = [_ObjectiveState(o, capacity) for o in self.objectives]
        self._pressure = 0.0
        self._recorder = None
        if recorder is not None:
            self.attach(recorder)

    def attach(self, recorder) -> None:
        """Subscribe to a :class:`HistoryRecorder`'s ticks."""
        self._recorder = recorder
        recorder.add_listener(self.on_tick)

    def detach(self) -> None:
        recorder, self._recorder = self._recorder, None
        if recorder is not None:
            recorder.remove_listener(self.on_tick)

    # -- evaluation ---------------------------------------------------------

    def on_tick(self, ts: float, deltas: dict) -> None:
        """Fold one tick's deltas in and re-evaluate every objective."""
        transitions = []
        with self._lock:
            pressure = 0.0
            for state in self._states:
                bad, total = state.objective.classify(deltas)
                state.samples.append((ts, bad, total))
                burn_fast = self._burn_locked(state, ts, self.fast_window)
                burn_slow = self._burn_locked(state, ts, self.slow_window)
                state.burn_fast, state.burn_slow = burn_fast, burn_slow
                firing = burn_fast >= self.fast_burn or burn_slow >= self.slow_burn
                if firing != state.firing:
                    state.firing = firing
                    transitions.append((state.objective, firing, burn_fast, burn_slow))
                if firing:
                    pressure = max(
                        pressure,
                        min(max(burn_fast, burn_slow) - 1.0, self.max_pressure),
                    )
            self._pressure = pressure
        # Events and gauges go out after the lock is released: emitters
        # run handler/registry code that must not order against it.
        for objective, firing, burn_fast, burn_slow in transitions:
            obs_events.emit(
                "slo_burn" if firing else "slo_clear",
                objective=objective.name,
                burn_fast=round(burn_fast, 3),
                burn_slow=round(burn_slow, 3),
                budget=objective.budget,
            )
            obs_metrics.counter(
                "slo.burn.fired" if firing else "slo.burn.cleared"
            ).add(1)
        obs_metrics.gauge("slo.pressure").set(self.pressure())

    def _burn_locked(self, state: _ObjectiveState, now: float, window: float) -> float:
        bad = total = 0
        for ts, b, t in reversed(state.samples):
            if now - ts > window:
                break
            bad += b
            total += t
        if total <= 0:
            return 0.0
        return (bad / total) / state.objective.budget

    # -- consumers ----------------------------------------------------------

    def pressure(self) -> float:
        """Cached admission pressure, >= 0; safe under foreign locks."""
        with self._lock:
            return self._pressure

    def snapshot(self) -> list[dict]:
        """Per-objective state for ``SHOW SLO``."""
        with self._lock:
            out = []
            for state in self._states:
                bad = sum(b for _, b, _ in state.samples)
                total = sum(t for _, _, t in state.samples)
                out.append(
                    {
                        "objective": state.objective.name,
                        "kind": state.objective.kind,
                        "metric": state.objective.metric,
                        "threshold": state.objective.threshold,
                        "budget": state.objective.budget,
                        "burn_fast": state.burn_fast,
                        "burn_slow": state.burn_slow,
                        "firing": state.firing,
                        "bad": bad,
                        "total": total,
                    }
                )
            return out
