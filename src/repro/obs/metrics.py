"""Process-local metrics: named counters, gauges, fixed-bucket histograms.

Instruments live in a :class:`Registry`.  Registries form a hierarchy
through ``parent``: every update to an instrument also lands on the
same-named instrument of the parent registry, all the way up.  The
czar uses exactly that shape -- a per-query registry (backing
``QueryStats``) parented to the czar's lifetime registry, which is
parented to the process-global :data:`REGISTRY` -- so one
``stats.chunks_retried += 1`` updates all three views with one call.

Propagation is sequential, never nested: an instrument updates its own
value under its own lock, releases it, and only then calls its parent.
That keeps the runtime lock-order sanitizer happy (instrument locks all
share a role name, so nesting them would read as a self-cycle) and
keeps the cost of an update at one uncontended lock per level.

Everything is snapshot-able as a plain dict (``Registry.snapshot()``)
and dumpable to JSON (``Registry.to_json()``) -- the shell's ``SHOW
METRICS`` is just a rendering of that snapshot.
"""

from __future__ import annotations

import bisect
import json
from typing import Optional

from ..analysis.sanitizer import make_lock

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "REGISTRY",
    "DEFAULT_BUCKETS",
    "counter",
    "gauge",
    "histogram",
    "snapshot",
    "to_json",
    "reset",
    "estimate_quantile",
]

#: Default histogram bucket upper bounds, in seconds: tuned for the
#: sub-millisecond-to-seconds latencies of the in-process cluster.
DEFAULT_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)


def estimate_quantile(bounds, counts, q, observed_max=None, observed_min=None):
    """Estimate a quantile from fixed-bucket counts by interpolation.

    ``counts`` has ``len(bounds) + 1`` entries, the last being the
    ``+Inf`` overflow bucket.  Within a finite bucket the estimate
    interpolates linearly between its bounds.  When the quantile lands
    in the overflow bucket the estimate is the *observed* maximum when
    one is known -- fixed-bucket histograms used to silently clamp p99
    at the last bucket edge, which under-reported every tail worse than
    the layout anticipated.  Returns ``None`` for an empty histogram.
    """
    total = sum(counts)
    if total <= 0:
        return None
    q = min(max(float(q), 0.0), 1.0)
    rank = q * total
    cum = 0
    for i, c in enumerate(counts):
        if c <= 0:
            continue
        if cum + c >= rank:
            if i >= len(bounds):
                # Overflow bucket: report the real tail, not the edge.
                if observed_max is not None:
                    return float(observed_max)
                return float(bounds[-1]) if bounds else None
            hi = float(bounds[i])
            if i > 0:
                lo = float(bounds[i - 1])
            elif observed_min is not None:
                lo = min(float(observed_min), hi)
            else:
                lo = 0.0
            frac = (rank - cum) / c
            est = lo + (hi - lo) * min(max(frac, 0.0), 1.0)
            if observed_max is not None:
                est = min(est, float(observed_max))
            if observed_min is not None:
                est = max(est, float(observed_min))
            return est
        cum += c
    return float(observed_max) if observed_max is not None else None


class Counter:
    """An additive metric (events, bytes); adds propagate to the parent."""

    kind = "counter"

    __slots__ = ("name", "_value", "_lock", "_parent")

    def __init__(self, name: str, parent: Optional["Counter"] = None):
        self.name = name
        self._value = 0
        self._lock = make_lock("obs.Counter._lock")
        self._parent = parent

    def add(self, n=1) -> None:
        with self._lock:
            self._value += n
        if self._parent is not None:
            self._parent.add(n)

    @property
    def value(self):
        with self._lock:
            return self._value

    def snapshot(self):
        return self.value

    def __repr__(self):
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A point-in-time level (queue depth); sets propagate last-writer-wins."""

    kind = "gauge"

    __slots__ = ("name", "_value", "_lock", "_parent")

    def __init__(self, name: str, parent: Optional["Gauge"] = None):
        self.name = name
        self._value = 0
        self._lock = make_lock("obs.Gauge._lock")
        self._parent = parent

    def set(self, value) -> None:
        with self._lock:
            self._value = value
        if self._parent is not None:
            self._parent.set(value)

    def add(self, delta) -> None:
        with self._lock:
            self._value += delta
        if self._parent is not None:
            self._parent.add(delta)

    @property
    def value(self):
        with self._lock:
            return self._value

    def snapshot(self):
        return self.value

    def __repr__(self):
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """A fixed-bucket latency/size distribution with running summary stats.

    Buckets are upper bounds; one overflow bucket (``+Inf``) catches the
    rest.  The bucket layout is fixed at creation -- when the same name
    is requested again the existing instrument (and its layout) wins.
    """

    kind = "histogram"

    __slots__ = (
        "name",
        "buckets",
        "_counts",
        "_count",
        "_sum",
        "_min",
        "_max",
        "_lock",
        "_parent",
    )

    def __init__(self, name: str, buckets=None, parent: Optional["Histogram"] = None):
        self.name = name
        self.buckets = tuple(sorted(buckets if buckets is not None else DEFAULT_BUCKETS))
        self._counts = [0] * (len(self.buckets) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = None
        self._max = None
        self._lock = make_lock("obs.Histogram._lock")
        self._parent = parent

    def observe(self, value) -> None:
        value = float(value)
        with self._lock:
            self._counts[bisect.bisect_left(self.buckets, value)] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
        if self._parent is not None:
            self._parent.observe(value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def overflow(self) -> int:
        """Observations beyond the last bucket bound (the +Inf bucket)."""
        with self._lock:
            return self._counts[-1]

    def quantile(self, q) -> Optional[float]:
        """Interpolated quantile estimate; ``None`` when empty.

        Overflow-aware: a quantile that lands past the last bucket edge
        reports the observed maximum instead of clamping at the edge.
        """
        with self._lock:
            counts = list(self._counts)
            lo, hi = self._min, self._max
        return estimate_quantile(
            self.buckets, counts, q, observed_max=hi, observed_min=lo
        )

    def snapshot(self) -> dict:
        with self._lock:
            counts = list(self._counts)
            count, total = self._count, self._sum
            lo, hi = self._min, self._max
        labels = [f"<={b:g}" for b in self.buckets] + ["+Inf"]
        return {
            "count": count,
            "sum": total,
            "avg": (total / count) if count else 0.0,
            "min": lo if lo is not None else 0.0,
            "max": hi if hi is not None else 0.0,
            "overflow": counts[-1],
            "p50": estimate_quantile(self.buckets, counts, 0.5, hi, lo),
            "p99": estimate_quantile(self.buckets, counts, 0.99, hi, lo),
            "buckets": dict(zip(labels, counts)),
        }

    def __repr__(self):
        return f"Histogram({self.name!r}, count={self.count})"


class Registry:
    """A named collection of instruments, optionally feeding a parent."""

    def __init__(self, parent: Optional["Registry"] = None):
        self._parent = parent
        self._lock = make_lock("obs.Registry._lock")
        self._instruments: dict = {}

    def _get_or_create(self, name, kind, factory, parent_factory):
        with self._lock:
            inst = self._instruments.get(name)
        if inst is None:
            # Resolve the parent instrument *outside* our lock: parent
            # registries share the lock role, and the chain can be deep.
            parent_inst = (
                parent_factory(self._parent) if self._parent is not None else None
            )
            candidate = factory(parent_inst)
            with self._lock:
                inst = self._instruments.setdefault(name, candidate)
        if inst.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {inst.kind}, not {kind}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get_or_create(
            name,
            "counter",
            lambda p: Counter(name, parent=p),
            lambda reg: reg.counter(name),
        )

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(
            name,
            "gauge",
            lambda p: Gauge(name, parent=p),
            lambda reg: reg.gauge(name),
        )

    def histogram(self, name: str, buckets=None) -> Histogram:
        return self._get_or_create(
            name,
            "histogram",
            lambda p: Histogram(name, buckets=buckets, parent=p),
            lambda reg: reg.histogram(name, buckets=buckets),
        )

    def snapshot(self) -> dict:
        """``{name: value-or-histogram-dict}`` for every instrument."""
        with self._lock:
            items = sorted(self._instruments.items())
        return {name: inst.snapshot() for name, inst in items}

    def instruments(self) -> list:
        """``(name, instrument)`` pairs, sorted by name (a point-in-time copy)."""
        with self._lock:
            return sorted(self._instruments.items())

    def to_json(self, indent=2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self) -> None:
        """Forget every instrument (tests); links to parents are dropped."""
        with self._lock:
            self._instruments.clear()

    def __len__(self):
        with self._lock:
            return len(self._instruments)


#: The process-global registry: the root of every registry chain and
#: what the shell's ``SHOW METRICS`` renders.
REGISTRY = Registry()


def counter(name: str) -> Counter:
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return REGISTRY.gauge(name)


def histogram(name: str, buckets=None) -> Histogram:
    return REGISTRY.histogram(name, buckets=buckets)


def snapshot() -> dict:
    return REGISTRY.snapshot()


def to_json(indent=2) -> str:
    return REGISTRY.to_json(indent=indent)


def reset() -> None:
    REGISTRY.reset()
