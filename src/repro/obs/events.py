"""Structured events: a ring-buffered log of typed operational records.

Where :mod:`repro.obs.trace` answers "where did *this query* spend its
time" and :mod:`repro.obs.metrics` answers "how much, in aggregate",
the event log answers "what *happened*, in order": retries, hedges,
breaker trips, shutdowns -- the records the proxy/health layers used to
bury in free-text ``logging`` messages.

Event types currently emitted:

==================  ====================================================
``query_start``     proxy accepted a query (``sql``, ``session``, ``user``)
``query_end``       query finished (``sql``, ``seconds``, ``rows``, ``session``, ``user``)
``query_failed``    query raised (``sql``, ``error``, ``session``, ``user``)
``query_shed``      admission rejected a query (``tenant``, ``reason``, ``retry_after``)
``chunk_retry``     chunk re-dispatched (``chunk``, ``attempt``, ``error``)
``hedge_fired``     straggling chunk duplicated (``chunk``, ``delay``)
``hedge_won``       the duplicate answered first (``chunk``)
``chunk_timeout``   chunk abandoned at the deadline (``chunk``)
``partial_result``  failed chunks dropped from a merge (``chunks``)
``breaker_open``    circuit breaker tripped (``server``, ``cooldown``)
``breaker_probe``   half-open probe admitted (``server``)
``breaker_close``   breaker closed after success (``server``)
``worker_shutdown`` worker stopped serving (``worker``, ``pending``)
``chunk_cancelled`` worker withdrew a chunk query (``worker``, ``path``, ``queued``)
``chunk_expired``   worker skipped a deadline-dead task (``worker``, ``path``)
``cancel_notify_failed``  best-effort withdrawal write failed (``worker``, ``error``)
``job_submitted``   batch job journaled and queued (``job``, ``user``, ``table``)
``job_started``     runner began an execution (``job``, ``user``, ``attempt``)
``job_completed``   result committed to MyDB (``job``, ``user``, ``rows``, ``bytes``)
``job_failed``      job raised / shed out (``job``, ``error``)
``job_cancel``      cancellation requested (``job``, ``reason``)
``job_cancelled``   cancellation took effect (``job``, ``reason``)
``job_requeued``    shed batch job backing off (``job``, ``retry_after``)
``job_recovered``   journal replay resolved a job (``job``, ``user``, ``how``)
``frontend_crash``  simulated frontend crash (``jobs``)
==================  ====================================================

The ring (default 1024 records) bounds memory on long sessions; every
``emit`` also forwards to the stdlib ``repro.obs.events`` logger at
DEBUG, so existing log-based tooling keeps working.  The shell renders
the ring via ``SHOW EVENTS``.
"""

from __future__ import annotations

import json
import logging
import time
from collections import deque
from typing import Optional

from ..analysis.sanitizer import make_lock
from . import metrics as obs_metrics

__all__ = [
    "Event",
    "EventLog",
    "LOG",
    "emit",
    "recent",
    "clear",
    "to_json",
    "dropped",
    "oldest_seq",
]

_log = logging.getLogger("repro.obs.events")


class Event:
    """One typed record: sequence number, wall-clock time, type, fields."""

    __slots__ = ("seq", "ts", "type", "fields")

    def __init__(self, seq: int, ts: float, etype: str, fields: dict):
        self.seq = seq
        self.ts = ts
        self.type = etype
        self.fields = fields

    def as_dict(self) -> dict:
        return {"seq": self.seq, "ts": self.ts, "type": self.type, "fields": self.fields}

    def __repr__(self):
        return f"Event(#{self.seq} {self.type} {self.fields!r})"


class EventLog:
    """A bounded, append-only ring of :class:`Event` records."""

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._lock = make_lock("obs.EventLog._lock")
        self._events: deque = deque(maxlen=capacity)
        self._seq = 0
        self._dropped = 0

    def emit(self, etype: str, **fields) -> Event:
        ts = time.time()
        with self._lock:
            self._seq += 1
            ev = Event(self._seq, ts, etype, fields)
            evicted = len(self._events) == self._events.maxlen
            self._events.append(ev)
            if evicted:
                self._dropped += 1
        # Forward outside the lock: a logging handler (and the metrics
        # registry chain) must never run under -- or order against --
        # the ring's lock.
        if evicted:
            obs_metrics.counter("events.dropped").add(1)
        _log.debug("%s %s", etype, fields)
        return ev

    @property
    def dropped(self) -> int:
        """Records evicted from the ring since the last :meth:`clear`."""
        with self._lock:
            return self._dropped

    @property
    def oldest_seq(self) -> Optional[int]:
        """Sequence number of the oldest retained record, or None (empty).

        With monotonic seqs this makes the ring's gap visible:
        ``oldest_seq - 1`` records were emitted before everything the
        ring still holds -- what ``SHOW EVENTS`` renders as
        "(N older events dropped)".
        """
        with self._lock:
            return self._events[0].seq if self._events else None

    def recent(self, n: Optional[int] = None, type: Optional[str] = None) -> list:
        """The most recent events, oldest first, optionally filtered by type."""
        with self._lock:
            events = list(self._events)
        if type is not None:
            events = [e for e in events if e.type == type]
        if n is not None:
            events = events[-n:]
        return events

    def counts(self) -> dict:
        """``{event_type: occurrences}`` over the current ring contents."""
        out: dict = {}
        for e in self.recent():
            out[e.type] = out.get(e.type, 0) + 1
        return out

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self._dropped = 0

    def resize(self, capacity: int) -> None:
        """Change the ring capacity, keeping the newest records."""
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        with self._lock:
            shed = max(len(self._events) - capacity, 0)
            self._events = deque(self._events, maxlen=capacity)
            self._dropped += shed
        if shed:
            obs_metrics.counter("events.dropped").add(shed)

    def to_json(self, n: Optional[int] = None, indent=2) -> str:
        return json.dumps(
            [e.as_dict() for e in self.recent(n)], indent=indent, sort_keys=True
        )

    def __len__(self):
        with self._lock:
            return len(self._events)


#: The process-global event log every emitter feeds.
LOG = EventLog()


def emit(etype: str, **fields) -> Event:
    return LOG.emit(etype, **fields)


def recent(n: Optional[int] = None, type: Optional[str] = None) -> list:
    return LOG.recent(n, type=type)


def clear() -> None:
    LOG.clear()


def dropped() -> int:
    return LOG.dropped


def oldest_seq() -> Optional[int]:
    return LOG.oldest_seq


def to_json(n: Optional[int] = None, indent=2) -> str:
    return LOG.to_json(n, indent=indent)
