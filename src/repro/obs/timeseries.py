"""Metrics history: a bounded in-memory recorder over the registry.

``SHOW METRICS`` answers "how much, so far"; an operator also needs
"how fast, lately" -- is the shed rate climbing, did p99 jump when the
batch queue drained.  The :class:`HistoryRecorder` takes a snapshot of
a :class:`~repro.obs.metrics.Registry` at a fixed interval and folds
each delta into fixed-size ring series:

- counters become **rates** (``<name>.rate``, per second over the tick);
- gauges are **sampled** as-is (``<name>``);
- histograms become per-tick **quantile estimates** of the interval's
  observations (``<name>.p50`` / ``<name>.p99``, overflow-aware via
  :func:`~repro.obs.metrics.estimate_quantile`) plus an observation
  rate (``<name>.rate``).

Memory is bounded twice over: one ring of ``capacity`` points per
series, and the series catalog is bounded by the metric catalog.  The
recorder can run on its own daemon thread (``start()``, or the
``REPRO_HISTORY`` environment knob -- seconds between ticks, e.g.
``REPRO_HISTORY=1``) or be driven manually with :meth:`tick` (tests,
benchmarks, the shell).

Consumers: the shell's ``SHOW HISTORY <metric> [n]``, the Prometheus
text exposition (:meth:`to_prometheus` -- current registry state in
the standard scrape format) and a Perfetto **counter track**
(:meth:`to_perfetto` -- ``ph: "C"`` trace events that render as
stacked counter graphs next to the span tracks the existing
``Trace.to_chrome_json`` export produces).  SLO burn-rate evaluation
(:mod:`repro.obs.slo`) subscribes to ticks through
:meth:`add_listener`.
"""

from __future__ import annotations

import fnmatch
import json
import os
import re
import threading
import time
from collections import deque
from typing import Optional

from ..analysis.sanitizer import make_lock
from . import metrics as obs_metrics
from .metrics import estimate_quantile

__all__ = [
    "Point",
    "Series",
    "HistoryRecorder",
    "RECORDER",
    "to_prometheus",
    "maybe_start_from_env",
]

#: Ring length per series: at the default 1 s interval this retains
#: about 8.5 minutes of history per metric, enough for the SLO
#: monitor's slow window with room to spare.
DEFAULT_CAPACITY = 512


class Point:
    """One recorded sample: wall-clock timestamp and value."""

    __slots__ = ("ts", "value")

    def __init__(self, ts: float, value: float):
        self.ts = ts
        self.value = value

    def __iter__(self):
        return iter((self.ts, self.value))

    def __repr__(self):
        return f"Point(ts={self.ts:.3f}, value={self.value!r})"


class Series:
    """One metric's ring of points plus how it was derived."""

    __slots__ = ("name", "kind", "_points")

    def __init__(self, name: str, kind: str, capacity: int):
        self.name = name
        #: 'rate', 'gauge', or 'quantile' -- how points were derived.
        self.kind = kind
        self._points: deque = deque(maxlen=capacity)

    def append(self, ts: float, value: float) -> None:
        self._points.append(Point(ts, value))

    def points(self, n: Optional[int] = None) -> list:
        pts = list(self._points)
        return pts[-n:] if n is not None else pts

    @property
    def last(self) -> Optional[Point]:
        return self._points[-1] if self._points else None

    def __len__(self):
        return len(self._points)

    def __repr__(self):
        return f"Series({self.name!r}, kind={self.kind!r}, points={len(self)})"


class HistoryRecorder:
    """Snapshots a registry on a fixed interval into ring series.

    Thread-safe; ticks may come from the background thread or be driven
    manually.  Listeners registered with :meth:`add_listener` receive
    ``(ts, deltas)`` after every tick, *outside* the recorder's lock --
    ``deltas`` maps each counter name to its increment over the tick
    and each histogram name to ``{"count", "sum", "buckets", "bounds",
    "max"}`` interval deltas, which is exactly what burn-rate math
    needs.
    """

    def __init__(
        self,
        registry: Optional[obs_metrics.Registry] = None,
        interval: float = 1.0,
        capacity: int = DEFAULT_CAPACITY,
        clock=time.time,
    ):
        if interval <= 0:
            raise ValueError("interval must be > 0")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._registry = registry if registry is not None else obs_metrics.REGISTRY
        self.interval = float(interval)
        self.capacity = int(capacity)
        self._clock = clock
        self._lock = make_lock("obs.HistoryRecorder._lock")
        self._series: dict[str, Series] = {}
        #: Previous raw values per instrument, for delta computation.
        self._prev: dict[str, object] = {}
        self._prev_ts: Optional[float] = None
        self._listeners: list = []
        self._ticks = 0
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # -- recording ----------------------------------------------------------

    def tick(self, now: Optional[float] = None) -> dict:
        """Record one sample of every instrument; returns the deltas.

        The first tick only establishes the baseline (no points, empty
        deltas): a rate needs two observations.
        """
        ts = self._clock() if now is None else float(now)
        instruments = self._registry.instruments()
        raw: dict[str, object] = {}
        for name, inst in instruments:
            if inst.kind == "histogram":
                snap = inst.snapshot()
                raw[name] = {
                    "count": snap["count"],
                    "sum": snap["sum"],
                    "counts": list(snap["buckets"].values()),
                    "bounds": inst.buckets,
                    "max": snap["max"] if snap["count"] else None,
                    "min": snap["min"] if snap["count"] else None,
                }
            else:
                raw[name] = (inst.kind, inst.value)
        deltas: dict[str, object] = {}
        with self._lock:
            prev, prev_ts = self._prev, self._prev_ts
            self._prev, self._prev_ts = raw, ts
            self._ticks += 1
            if prev_ts is None:
                return deltas
            dt = max(ts - prev_ts, 1e-9)
            for name, value in raw.items():
                before = prev.get(name)
                if isinstance(value, tuple):
                    kind, v = value
                    if kind == "gauge":
                        self._append_locked(name, "gauge", ts, v)
                    else:
                        base = before[1] if isinstance(before, tuple) else 0
                        delta = v - base
                        deltas[name] = delta
                        self._append_locked(f"{name}.rate", "rate", ts, delta / dt)
                else:
                    base = before if isinstance(before, dict) else None
                    dcount = value["count"] - (base["count"] if base else 0)
                    dsum = value["sum"] - (base["sum"] if base else 0.0)
                    dcounts = [
                        c - (base["counts"][i] if base else 0)
                        for i, c in enumerate(value["counts"])
                    ]
                    deltas[name] = {
                        "count": dcount,
                        "sum": dsum,
                        "buckets": dcounts,
                        "bounds": value["bounds"],
                        "max": value["max"],
                    }
                    self._append_locked(f"{name}.rate", "rate", ts, dcount / dt)
                    if dcount > 0:
                        for label, q in (("p50", 0.5), ("p99", 0.99)):
                            est = estimate_quantile(
                                value["bounds"], dcounts, q,
                                observed_max=value["max"],
                                observed_min=value["min"],
                            )
                            if est is not None:
                                self._append_locked(
                                    f"{name}.{label}", "quantile", ts, est
                                )
            listeners = list(self._listeners)
        # Listener callbacks run outside the recorder lock so they may
        # freely touch metrics/events without ordering against it.
        for fn in listeners:
            fn(ts, deltas)
        return deltas

    def _append_locked(self, name: str, kind: str, ts: float, value: float) -> None:
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = Series(name, kind, self.capacity)
        series.append(ts, value)

    def add_listener(self, fn) -> None:
        with self._lock:
            self._listeners.append(fn)

    def remove_listener(self, fn) -> None:
        with self._lock:
            if fn in self._listeners:
                self._listeners.remove(fn)

    # -- background thread --------------------------------------------------

    def start(self) -> None:
        """Start the background sampling thread (idempotent)."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="obs-history", daemon=True
            )
            self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        with self._lock:
            thread, self._thread = self._thread, None
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=2.0)

    @property
    def running(self) -> bool:
        with self._lock:
            return self._thread is not None and self._thread.is_alive()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.tick()
            except Exception:  # reprolint: disable=exception-swallow -- sampling must never kill the thread; next tick re-reads a consistent view
                # A half-registered instrument mid-snapshot is possible
                # and harmless; the next tick sees a consistent view.
                pass

    # -- queries ------------------------------------------------------------

    @property
    def ticks(self) -> int:
        with self._lock:
            return self._ticks

    def names(self, pattern: Optional[str] = None) -> list[str]:
        """Recorded series names, optionally filtered by glob pattern."""
        with self._lock:
            names = sorted(self._series)
        if pattern:
            names = [n for n in names if fnmatch.fnmatchcase(n, pattern)]
        return names

    def get(self, name: str, n: Optional[int] = None) -> list[Point]:
        """Points for one series, oldest first (empty when unknown)."""
        with self._lock:
            series = self._series.get(name)
            return series.points(n) if series is not None else []

    def series_kind(self, name: str) -> Optional[str]:
        with self._lock:
            series = self._series.get(name)
            return series.kind if series is not None else None

    def reset(self) -> None:
        """Drop every series and the delta baseline (tests)."""
        with self._lock:
            self._series.clear()
            self._prev.clear()
            self._prev_ts = None
            self._ticks = 0

    # -- exports ------------------------------------------------------------

    def to_perfetto(self, pattern: Optional[str] = None) -> str:
        """Perfetto counter-track JSON for the recorded history.

        Each series becomes a ``ph: "C"`` counter event stream on its
        own track; timestamps are microseconds relative to the earliest
        recorded point.  Loads in https://ui.perfetto.dev next to the
        span traces ``Trace.to_chrome_json`` emits.
        """
        with self._lock:
            series = [
                s for name, s in sorted(self._series.items())
                if not pattern or fnmatch.fnmatchcase(name, pattern)
            ]
            snapshots = [(s.name, s.points()) for s in series]
        events = []
        t0 = min(
            (pts[0].ts for _, pts in snapshots if pts), default=0.0
        )
        for name, pts in snapshots:
            for p in pts:
                events.append(
                    {
                        "name": name,
                        "cat": "metrics",
                        "ph": "C",
                        "pid": 1,
                        "ts": round((p.ts - t0) * 1e6, 3),
                        "args": {"value": p.value},
                    }
                )
        return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})


_PROM_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    out = _PROM_SANITIZE.sub("_", name)
    if out and out[0].isdigit():
        out = "_" + out
    return "repro_" + out


def to_prometheus(registry: Optional[obs_metrics.Registry] = None) -> str:
    """The registry's current state in Prometheus text exposition format.

    Counters and gauges are plain samples; histograms expose the
    standard cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count``
    triple.  This is a scrape of *current* values -- history stays in
    the recorder's rings; Prometheus keeps its own.
    """
    registry = registry if registry is not None else obs_metrics.REGISTRY
    lines = []
    for name, inst in registry.instruments():
        pname = _prom_name(name)
        if inst.kind == "counter":
            lines.append(f"# TYPE {pname} counter")
            lines.append(f"{pname} {inst.value}")
        elif inst.kind == "gauge":
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {inst.value}")
        else:
            snap = inst.snapshot()
            lines.append(f"# TYPE {pname} histogram")
            cumulative = 0
            for label, count in snap["buckets"].items():
                cumulative += count
                le = label[2:] if label.startswith("<=") else "+Inf"
                lines.append(f'{pname}_bucket{{le="{le}"}} {cumulative}')
            lines.append(f"{pname}_sum {snap['sum']}")
            lines.append(f"{pname}_count {snap['count']}")
    return "\n".join(lines) + "\n"


#: The process-global recorder over the process-global registry -- what
#: the shell's ``SHOW HISTORY`` reads and ``REPRO_HISTORY`` starts.
RECORDER = HistoryRecorder()


def maybe_start_from_env() -> bool:
    """Start :data:`RECORDER` when ``REPRO_HISTORY`` asks for it.

    The value is the tick interval in seconds (``REPRO_HISTORY=1``);
    ``0`` / empty / unparseable leaves the recorder off.  Returns
    whether the recorder is running.
    """
    raw = os.environ.get("REPRO_HISTORY", "").strip().lower()
    if raw in ("", "0", "false", "no", "off"):
        return False
    try:
        interval = float(raw)
    except ValueError:
        interval = 1.0
    if interval <= 0:
        return False
    RECORDER.interval = interval
    RECORDER.start()
    return True


maybe_start_from_env()
