"""Lightweight per-query tracing with cross-boundary propagation.

A :class:`Trace` is one query's tree of timed :class:`Span`\\ s.  Spans
start when created and must be closed -- either as a context manager::

    with obs_trace.span("merge", parent=root, rows=n):
        ...

or explicitly (the ``span-leak`` lint rule enforces one of the two
shapes, or a visible hand-off to code that will close it)::

    sp = obs_trace.span("attempt", parent=dispatch_span)
    pool.submit(run_attempt, spec, sp)   # run_attempt closes it

The czar propagates trace context to workers *inside the chunk query
text* as a ``-- TRACE: <trace_id>/<span_id>`` header line (exactly like
``-- DEADLINE:``), so worker-side execute/dump spans parent correctly
under the czar's dispatch span even across retries and hedged
duplicates.  Workers resolve the id through :func:`lookup` against the
bounded in-process trace collector.

Cost model: when tracing is off (the default -- enable with
``REPRO_TRACE=1`` or :func:`configure`), :func:`span` returns the
shared :data:`NOOP_SPAN` after a couple of attribute checks and no
allocation, so instrumented code paths stay effectively free.  A
sampling knob (``REPRO_TRACE_SAMPLE``, deterministic pacing rather than
randomness) bounds the cost when tracing is on.

Clocks are explicit and injectable: a trace stamps every span through
its own ``clock`` (default ``time.perf_counter``), so tests can drive
spans with a fake clock and get exact durations.

Export: :meth:`Trace.to_chrome_json` emits Chrome/Perfetto trace-event
JSON (``ph: "X"`` complete events, microsecond timestamps) that loads
directly in ``chrome://tracing`` or https://ui.perfetto.dev;
:meth:`Trace.pretty` renders the indented span tree the shell's
``TRACE <sql>`` command prints.
"""

from __future__ import annotations

import itertools
import json
import math
import os
import threading
import time
from collections import OrderedDict
from typing import Optional

from ..analysis.sanitizer import make_lock

__all__ = [
    "Span",
    "Trace",
    "NOOP_SPAN",
    "span",
    "start_trace",
    "lookup",
    "current_span",
    "configure",
    "is_enabled",
    "sample_rate",
    "reset",
]

#: Traces kept by the in-process collector (oldest evicted first).  The
#: collector exists so workers can resolve a ``-- TRACE:`` header back
#: to the czar's live trace; 64 in-flight queries is far beyond what
#: the in-process cluster ever runs concurrently.
_MAX_TRACES = 64


def _env_enabled() -> bool:
    return os.environ.get("REPRO_TRACE", "0").strip().lower() not in (
        "",
        "0",
        "false",
        "no",
        "off",
    )


def _env_sample_rate() -> float:
    raw = os.environ.get("REPRO_TRACE_SAMPLE", "").strip()
    if not raw:
        return 1.0
    try:
        return min(max(float(raw), 0.0), 1.0)
    except ValueError:
        return 1.0


_config_lock = make_lock("obs.trace._config_lock")
_enabled = _env_enabled()
_sample_rate = _env_sample_rate()
_clock = time.perf_counter
_traces: "OrderedDict[str, Trace]" = OrderedDict()
_trace_counter = itertools.count()

_tls = threading.local()


def _stack() -> list:
    st = getattr(_tls, "stack", None)
    if st is None:
        st = _tls.stack = []
    return st


class _NoopSpan:
    """The do-nothing span returned whenever tracing is off/unsampled."""

    __slots__ = ()

    name = ""
    span_id = ""
    parent_id = None
    trace = None
    status = "noop"
    attrs: dict = {}

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set(self, **attrs):
        return self

    def end(self, status: Optional[str] = None):
        return self

    def cancel(self):
        return self

    def __bool__(self):
        return False

    def __repr__(self):
        return "NOOP_SPAN"


NOOP_SPAN = _NoopSpan()


class Span:
    """One timed operation in a trace; starts at construction."""

    __slots__ = (
        "trace",
        "name",
        "span_id",
        "parent_id",
        "attrs",
        "thread",
        "status",
        "start",
        "end_time",
    )

    def __init__(self, trace: "Trace", name: str, parent_id=None, attrs=None):
        self.trace = trace
        self.name = name
        self.span_id = trace._next_span_id()
        self.parent_id = parent_id
        self.attrs = dict(attrs) if attrs else {}
        self.thread = threading.get_ident()
        self.status = "open"
        self.end_time: Optional[float] = None
        self.start = trace.clock()
        trace._add(self)

    def set(self, **attrs) -> "Span":
        """Attach attributes (merged into the span's ``attrs`` dict)."""
        self.attrs.update(attrs)
        return self

    def end(self, status: Optional[str] = None) -> "Span":
        """Close the span (idempotent); cancelled spans stay cancelled."""
        if self.end_time is not None:
            return self
        self.end_time = self.trace.clock()
        if self.status != "cancelled":
            self.status = status or "ok"
        return self

    def cancel(self) -> "Span":
        """Mark the span abandoned (a losing hedge attempt).

        Takes effect immediately even if the span's thread is still
        running -- its eventual ``end()`` records the finish time but
        keeps the ``cancelled`` status.
        """
        self.status = "cancelled"
        return self

    @property
    def duration(self) -> Optional[float]:
        if self.end_time is None:
            return None
        return self.end_time - self.start

    def __enter__(self) -> "Span":
        _stack().append(self)
        return self

    def __exit__(self, exc_type, exc, tb):
        st = _stack()
        if st and st[-1] is self:
            st.pop()
        if exc is not None and self.end_time is None:
            self.set(error=f"{exc_type.__name__}: {exc}")
            self.end("error")
        else:
            self.end()
        return False

    def __repr__(self):
        dur = self.duration
        timing = f"{dur * 1e3:.3f}ms" if dur is not None else "open"
        return f"Span({self.name!r}, id={self.span_id}, {self.status}, {timing})"


class Trace:
    """One query's spans, with the clock that stamps them."""

    def __init__(self, trace_id: str, clock=None):
        self.trace_id = trace_id
        self.clock = clock if clock is not None else time.perf_counter
        self._lock = make_lock("obs.Trace._lock")
        self._spans: list = []
        self._span_ids = itertools.count(1)

    def _next_span_id(self) -> str:
        return f"s{next(self._span_ids)}"

    def _add(self, sp: Span) -> None:
        with self._lock:
            self._spans.append(sp)

    @property
    def spans(self) -> list:
        with self._lock:
            return list(self._spans)

    def find(self, name: str) -> Optional[Span]:
        """The first span with this name, or None."""
        for sp in self.spans:
            if sp.name == name:
                return sp
        return None

    def _tree(self):
        spans = sorted(self.spans, key=lambda s: (s.start, s.span_id))
        ids = {s.span_id for s in spans}
        children: dict = {}
        roots = []
        for sp in spans:
            if sp.parent_id is not None and sp.parent_id in ids:
                children.setdefault(sp.parent_id, []).append(sp)
            else:
                roots.append(sp)
        return roots, children

    def pretty(self) -> str:
        """The indented span tree ``TRACE <sql>`` prints."""
        roots, children = self._tree()
        lines = []

        def walk(sp: Span, depth: int) -> None:
            dur = sp.duration
            timing = f"{dur * 1e3:.2f} ms" if dur is not None else "unfinished"
            status = "" if sp.status == "ok" else f" [{sp.status}]"
            attrs = " ".join(
                f"{k}={v}" for k, v in sorted(sp.attrs.items()) if k != "track"
            )
            line = f"{'  ' * depth}{sp.name}  ({timing}){status}"
            if attrs:
                line += f"  {attrs}"
            lines.append(line)
            for child in children.get(sp.span_id, ()):
                walk(child, depth + 1)

        for root in roots:
            walk(root, 0)
        return "\n".join(lines)

    def to_chrome_json(self) -> str:
        """Chrome/Perfetto trace-event JSON for this trace.

        Complete (``ph: "X"``) events with microsecond timestamps
        relative to the earliest span, one Perfetto track per thread,
        named from each span's ``track`` attribute (czar vs. worker
        names).  Unfinished spans extend to the latest timestamp seen.
        """
        spans = self.spans
        events = []
        if spans:
            t0 = min(s.start for s in spans)
            t_last = max(
                s.end_time if s.end_time is not None else s.start for s in spans
            )
            tids: dict = {}
            track_names: dict = {}
            for sp in spans:
                tid = tids.setdefault(sp.thread, len(tids) + 1)
                track = sp.attrs.get("track")
                if track and tid not in track_names:
                    track_names[tid] = str(track)
                end = sp.end_time if sp.end_time is not None else t_last
                args = {k: _jsonable(v) for k, v in sp.attrs.items()}
                args.update(
                    span_id=sp.span_id,
                    parent_id=sp.parent_id,
                    status=sp.status,
                    trace_id=self.trace_id,
                )
                events.append(
                    {
                        "name": sp.name,
                        "cat": "qserv",
                        "ph": "X",
                        "pid": 1,
                        "tid": tid,
                        "ts": round((sp.start - t0) * 1e6, 3),
                        "dur": round(max(end - sp.start, 0.0) * 1e6, 3),
                        "args": args,
                    }
                )
            for tid in sorted(tids.values()):
                events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": 1,
                        "tid": tid,
                        "args": {"name": track_names.get(tid, f"thread-{tid}")},
                    }
                )
        return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})

    def __repr__(self):
        return f"Trace({self.trace_id!r}, spans={len(self.spans)})"


def _jsonable(v):
    if isinstance(v, (str, int, float, bool)) or v is None:
        return v
    return str(v)


def configure(enabled=None, sample_rate=None, clock=None) -> None:
    """Override the env-derived tracing configuration (tests, benchmarks)."""
    global _enabled, _sample_rate, _clock
    with _config_lock:
        if enabled is not None:
            _enabled = bool(enabled)
        if sample_rate is not None:
            _sample_rate = min(max(float(sample_rate), 0.0), 1.0)
        if clock is not None:
            _clock = clock


def is_enabled() -> bool:
    return _enabled


def sample_rate() -> float:
    return _sample_rate


def reset() -> None:
    """Re-derive config from the environment and clear the collector."""
    global _enabled, _sample_rate, _clock
    with _config_lock:
        _enabled = _env_enabled()
        _sample_rate = _env_sample_rate()
        _clock = time.perf_counter
        _traces.clear()


def _sampled(n: int, rate: float) -> bool:
    # Deterministic pacing: of any N consecutive queries, floor(N*rate)
    # are sampled, spread evenly -- no RNG, so runs are reproducible.
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    return math.floor((n + 1) * rate) > math.floor(n * rate)


def start_trace(force: bool = False) -> Optional["Trace"]:
    """A new registered trace, or None (disabled / not sampled).

    ``force=True`` bypasses both the enable flag and the sampler -- the
    shell's ``TRACE <sql>`` and explicit ``submit(..., trace=True)``.
    """
    if not force and not _enabled:
        return None
    with _config_lock:
        n = next(_trace_counter)
        if not force and not _sampled(n, _sample_rate):
            return None
        tr = Trace(f"t{n:06d}", clock=_clock)
        _traces[tr.trace_id] = tr
        while len(_traces) > _MAX_TRACES:
            _traces.popitem(last=False)
    return tr


def lookup(trace_id: Optional[str]) -> Optional["Trace"]:
    """Resolve a propagated trace id against the collector (worker side)."""
    if not trace_id:
        return None
    with _config_lock:
        return _traces.get(trace_id)


def current_span() -> Optional[Span]:
    """The innermost span entered on this thread, or None."""
    st = getattr(_tls, "stack", None)
    return st[-1] if st else None


def span(name: str, parent=None, trace=None, parent_id=None, **attrs):
    """Start a span; the near-zero-cost entry point for instrumentation.

    Resolution order for the owning trace: explicit ``trace``, then the
    ``parent`` span's trace, then the innermost span entered on this
    thread.  When none resolves (tracing off, query unsampled, unknown
    propagated id) the shared :data:`NOOP_SPAN` is returned and nothing
    is recorded.  ``parent_id`` carries a *remote* parent -- the worker
    parenting its spans under the czar's attempt span by id.
    """
    if trace is None:
        if parent is not None:
            trace = parent.trace
            if trace is None:
                return NOOP_SPAN
            if parent_id is None:
                parent_id = parent.span_id
        else:
            cur = current_span()
            if cur is None:
                return NOOP_SPAN
            trace = cur.trace
            if parent_id is None:
                parent_id = cur.span_id
    elif parent is not None and parent_id is None and parent.span_id:
        parent_id = parent.span_id
    return Span(trace, name, parent_id=parent_id, attrs=attrs)
