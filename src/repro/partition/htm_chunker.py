"""HTM-based two-level partitioning (the section 7.5 alternative).

The paper proposes replacing the rectangular stripes/sub-stripes scheme
with a hierarchical pixelization: "map spherical points to integer
identifiers encoding the points' partitions at many subdivision
levels".  This chunker does exactly that with
:class:`~repro.sphgeom.htm.HtmPixelization`:

- a *chunk* is a trixel at ``chunk_level`` (its global HTM id is the
  chunk id -- hierarchical, integer, exactly as advertised);
- a *sub-chunk* is a trixel at ``chunk_level + sub_level`` inside it,
  numbered 0..4^sub_level-1 relative to the chunk;
- partition geometry is served as trixel bounding circles, which makes
  overlap handling conservative (a superset of the exact overlap rows
  is stored) and therefore exact for joins, just like the box scheme.

The class is interface-compatible with
:class:`~repro.partition.chunker.Chunker`, so the loader, czar, and
rewriter run unmodified on HTM partitioning -- the whole point of the
paper's "alternate partitioning" discussion.
"""

from __future__ import annotations

import numpy as np

from ..sphgeom import HtmPixelization, Region, SphericalCircle

__all__ = ["HtmChunker"]


class HtmChunker:
    """Two-level HTM partitioning with overlap.

    Parameters
    ----------
    chunk_level:
        HTM subdivision level of chunks (level 3 = 512 chunks; level 5 =
        8192, comparable to the paper's 8983).
    sub_level:
        Extra levels for sub-chunks (2 = 16 sub-chunks per chunk;
        3 = 64).
    overlap:
        Overlap radius in degrees, as for the box chunker.
    """

    def __init__(self, chunk_level: int = 3, sub_level: int = 2, overlap: float = 0.01667):
        if sub_level < 1:
            raise ValueError(f"sub_level must be >= 1, got {sub_level}")
        if overlap < 0:
            raise ValueError(f"overlap must be non-negative, got {overlap}")
        self.chunk_level = int(chunk_level)
        self.sub_level = int(sub_level)
        self.overlap = float(overlap)
        self._coarse = HtmPixelization(self.chunk_level)
        self._fine = HtmPixelization(self.chunk_level + self.sub_level)
        self._subs_per_chunk = 4**self.sub_level

    # -- point assignment ----------------------------------------------------

    def chunk_id(self, ra, dec):
        return self._coarse.index_points(ra, dec)

    def sub_chunk_id(self, ra, dec):
        fine = self._fine.index_points(ra, dec)
        if np.isscalar(fine):
            return int(fine) % self._subs_per_chunk
        return fine % self._subs_per_chunk

    # -- enumeration ------------------------------------------------------------

    def all_chunks(self) -> np.ndarray:
        lo, hi = self._coarse.id_range()
        return np.arange(lo, hi, dtype=np.int64)

    @property
    def num_chunks(self) -> int:
        return self._coarse.num_trixels

    def sub_chunks_of(self, chunk_id: int) -> np.ndarray:
        self._check_chunk(chunk_id)
        return np.arange(self._subs_per_chunk, dtype=np.int64)

    def _check_chunk(self, chunk_id: int) -> None:
        lo, hi = self._coarse.id_range()
        if not lo <= int(chunk_id) < hi:
            raise ValueError(f"invalid chunk id {chunk_id}")

    def _fine_id(self, chunk_id: int, sub_chunk_id: int) -> int:
        self._check_chunk(chunk_id)
        if not 0 <= int(sub_chunk_id) < self._subs_per_chunk:
            raise ValueError(
                f"invalid sub-chunk id {sub_chunk_id} for chunk {chunk_id}"
            )
        return int(chunk_id) * self._subs_per_chunk + int(sub_chunk_id)

    # -- geometry -------------------------------------------------------------------

    def chunk_box(self, chunk_id: int) -> SphericalCircle:
        """The chunk's bounding circle (plays the box scheme's chunk box)."""
        self._check_chunk(chunk_id)
        verts = self._coarse.trixel_vertices(int(chunk_id))
        return self._coarse._trixel_bounding_circle(verts)

    def sub_chunk_box(self, chunk_id: int, sub_chunk_id: int) -> SphericalCircle:
        fine = self._fine_id(chunk_id, sub_chunk_id)
        verts = self._fine.trixel_vertices(fine)
        return self._fine._trixel_bounding_circle(verts)

    def chunk_overlap_box(self, chunk_id: int) -> SphericalCircle:
        return self.chunk_box(chunk_id).dilated(self.overlap)

    def sub_chunk_overlap_box(self, chunk_id: int, sub_chunk_id: int) -> SphericalCircle:
        return self.sub_chunk_box(chunk_id, sub_chunk_id).dilated(self.overlap)

    # -- region coverage -----------------------------------------------------------------

    def chunks_intersecting(self, region: Region) -> np.ndarray:
        """Conservative chunk coverage via the HTM envelope."""
        return self._coarse.envelope(region)

    def sub_chunks_intersecting(self, chunk_id: int, region: Region) -> np.ndarray:
        self._check_chunk(chunk_id)
        fine_ids = self._fine.envelope(region)
        base = int(chunk_id) * self._subs_per_chunk
        mine = fine_ids[(fine_ids >= base) & (fine_ids < base + self._subs_per_chunk)]
        return (mine - base).astype(np.int64)

    # -- overlap membership -----------------------------------------------------------------

    def in_sub_chunk_overlap(self, chunk_id: int, sub_chunk_id: int, ra, dec):
        """Overlap rows of a sub-chunk: near the trixel but outside it.

        Conservative via the dilated bounding circle -- may store a few
        extra rows, never misses one within the overlap radius, so
        near-neighbor joins stay exact (the same contract the box
        chunker provides).
        """
        fine = self._fine_id(chunk_id, sub_chunk_id)
        ra = np.atleast_1d(np.asarray(ra, dtype=np.float64))
        dec = np.atleast_1d(np.asarray(dec, dtype=np.float64))
        near = self.sub_chunk_overlap_box(chunk_id, sub_chunk_id).contains(ra, dec)
        near = np.atleast_1d(near)
        out = np.zeros(len(ra), dtype=bool)
        if near.any():
            inside = self._fine.index_points(ra[near], dec[near]) == fine
            out[np.flatnonzero(near)] = ~inside
        return out

    def __repr__(self):
        return (
            f"HtmChunker(chunk_level={self.chunk_level}, sub_level={self.sub_level}, "
            f"overlap={self.overlap}, num_chunks={self.num_chunks})"
        )
