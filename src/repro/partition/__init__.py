"""Two-level spatial partitioning (paper sections 4.4 and 5.2).

Large spatial tables are fragmented into coarse *chunks* for query
dispatch and fine *sub-chunks* for near-neighbor joins.  The sphere is
cut into equal-height declination *stripes*; each stripe is cut into
chunks of roughly equal area by scaling the chunk width with
``1/cos(dec)``; each stripe is further divided into *sub-stripes* and
each chunk into sub-chunks the same way.  The paper's test configuration
(85 stripes x 12 sub-stripes, ~2.11 deg stripes, ~4.5 deg^2 chunks,
8983 chunks, 1 arc-minute overlap) is the default here.

- :class:`Chunker` -- (ra, dec) -> (chunkId, subChunkId) assignment,
  chunk/sub-chunk geometry, region -> chunk-set coverage, and overlap
  membership.
- :class:`Placement` -- chunk -> worker-node placement with incremental
  rebalancing (many more chunks than nodes, per section 4.4).
"""

from .chunker import Chunker
from .htm_chunker import HtmChunker
from .placement import Placement

__all__ = ["Chunker", "HtmChunker", "Placement"]
