"""Chunk-to-node placement.

Section 4.4: with many more partitions than nodes, adding or removing a
node only requires *moving* some chunks, never re-computing partition
boundaries.  :class:`Placement` implements that contract: deterministic
round-robin initial assignment plus minimal-movement rebalancing on
membership changes, with optional replication for fault tolerance.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

import numpy as np

__all__ = ["Placement"]


class Placement:
    """Tracks which worker node owns each chunk (plus replicas).

    Parameters
    ----------
    chunk_ids:
        All chunk ids being placed.
    nodes:
        Initial node names.
    replication:
        Copies of each chunk, including the primary (>= 1).  Replicas go
        to distinct nodes when possible.
    """

    def __init__(
        self,
        chunk_ids: Iterable[int],
        nodes: Sequence[str],
        replication: int = 1,
    ):
        nodes = list(nodes)
        if not nodes:
            raise ValueError("at least one node is required")
        if len(set(nodes)) != len(nodes):
            raise ValueError("node names must be unique")
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        self.replication = int(replication)
        self._nodes: list[str] = nodes
        self._replicas: dict[int, list[str]] = {}
        chunk_list = sorted(int(c) for c in chunk_ids)
        if len(set(chunk_list)) != len(chunk_list):
            raise ValueError("chunk ids must be unique")
        for i, cid in enumerate(chunk_list):
            owners = [
                nodes[(i + r) % len(nodes)]
                for r in range(min(self.replication, len(nodes)))
            ]
            self._replicas[cid] = owners

    # -- queries ------------------------------------------------------------

    @property
    def nodes(self) -> list[str]:
        return list(self._nodes)

    @property
    def effective_replication(self) -> int:
        """The replication factor actually achievable right now.

        The configured factor clamped to the node count: asking for 3
        copies on a 2-node cluster deterministically yields 2 distinct
        replicas per chunk (and grows back toward 3 as nodes join).
        Health reporting and the repair manager target this, never the
        raw configured factor, so a small cluster is not permanently
        reported (or repaired) as under-replicated.
        """
        return min(self.replication, len(self._nodes))

    @property
    def chunk_ids(self) -> list[int]:
        return sorted(self._replicas)

    def primary(self, chunk_id: int) -> str:
        """The primary owner of a chunk."""
        return self._replicas[int(chunk_id)][0]

    def replicas(self, chunk_id: int) -> list[str]:
        """All owners of a chunk, primary first."""
        return list(self._replicas[int(chunk_id)])

    def chunks_of(self, node: str) -> list[int]:
        """Chunks for which ``node`` is the primary owner."""
        if node not in self._nodes:
            raise KeyError(f"unknown node {node!r}")
        return sorted(c for c, owners in self._replicas.items() if owners[0] == node)

    def chunks_hosted_by(self, node: str) -> list[int]:
        """Chunks present on ``node`` as primary or replica."""
        if node not in self._nodes:
            raise KeyError(f"unknown node {node!r}")
        return sorted(c for c, owners in self._replicas.items() if node in owners)

    def load(self) -> dict[str, int]:
        """Primary-chunk count per node."""
        counts = {n: 0 for n in self._nodes}
        for owners in self._replicas.values():
            counts[owners[0]] += 1
        return counts

    def imbalance(self) -> float:
        """max/mean primary load; 1.0 is perfectly balanced."""
        loads = np.array(list(self.load().values()), dtype=np.float64)
        mean = loads.mean()
        return float(loads.max() / mean) if mean > 0 else 1.0

    # -- replica bookkeeping -----------------------------------------------------

    def add_replica(self, chunk_id: int, node: str) -> bool:
        """Record that ``node`` now hosts ``chunk_id`` (repair finished).

        Returns False (a no-op) when the node already hosts the chunk,
        which is what makes repair idempotent at the placement level.
        """
        cid = int(chunk_id)
        if node not in self._nodes:
            raise KeyError(f"unknown node {node!r}")
        if cid not in self._replicas:
            raise KeyError(f"unknown chunk {cid}")
        owners = self._replicas[cid]
        if node in owners:
            return False
        owners.append(node)
        return True

    def drop_replica(self, chunk_id: int, node: str) -> bool:
        """Forget ``node``'s copy of ``chunk_id`` (scrub gave up on it).

        The last copy can never be dropped: a chunk with no owner would
        silently vanish from coverage, which is exactly the misassignment
        this class exists to prevent.
        """
        cid = int(chunk_id)
        if cid not in self._replicas:
            raise KeyError(f"unknown chunk {cid}")
        owners = self._replicas[cid]
        if node not in owners:
            return False
        if len(owners) == 1:
            raise ValueError(
                f"cannot drop the last replica of chunk {cid} (on {node!r})"
            )
        owners.remove(node)
        return True

    # -- membership changes ------------------------------------------------------

    def add_node(self, node: str) -> list[int]:
        """Add a node, migrating a minimal set of chunks onto it.

        Returns the chunk ids whose *primary* moved.  Only about
        ``num_chunks / (n+1)`` chunks move -- existing assignments are
        otherwise untouched, which is exactly the benefit the paper
        claims for many-partitions-per-node.
        """
        if node in self._nodes:
            raise ValueError(f"node {node!r} already present")
        self._nodes.append(node)
        n = len(self._nodes)
        target = len(self._replicas) // n
        # Steal primaries from the most loaded nodes, round-robin.
        moved: list[int] = []
        by_node: dict[str, list[int]] = defaultdict(list)
        for cid, owners in sorted(self._replicas.items()):
            by_node[owners[0]].append(cid)
        donors = sorted(by_node, key=lambda k: -len(by_node[k]))
        while len(moved) < target and donors:
            for donor in list(donors):
                if len(moved) >= target:
                    break
                if len(by_node[donor]) <= target:
                    donors.remove(donor)
                    continue
                cid = by_node[donor].pop()
                owners = self._replicas[cid]
                if node in owners:
                    continue
                owners[0] = node
                moved.append(cid)
        self._repair_replicas()
        return sorted(moved)

    def remove_node(self, node: str) -> list[int]:
        """Remove a node, redistributing its primaries evenly.

        Returns the chunk ids that moved.  Chunks replicated elsewhere
        promote a surviving replica to primary where possible.
        """
        if node not in self._nodes:
            raise KeyError(f"unknown node {node!r}")
        if len(self._nodes) == 1:
            raise ValueError("cannot remove the last node")
        self._nodes.remove(node)
        moved: list[int] = []
        # Primary loads over the surviving nodes only (the dead node's
        # chunks are re-homed in the loop below).
        loads = {n: 0 for n in self._nodes}
        for owners in self._replicas.values():
            if owners[0] != node:
                loads[owners[0]] += 1
        for cid, owners in sorted(self._replicas.items()):
            if node not in owners:
                continue
            was_primary = owners[0] == node
            owners[:] = [o for o in owners if o != node]
            if not owners:
                # Lost the only copy: reassign to the least-loaded node.
                dest = min(loads, key=lambda k: (loads[k], k))
                owners.append(dest)
                loads[dest] += 1
            elif was_primary:
                # A surviving replica is promoted to primary.
                loads[owners[0]] += 1
            moved.append(cid)
        self._repair_replicas()
        return sorted(moved)

    def _repair_replicas(self):
        """Top replica lists back up to the replication factor.

        Candidates are chosen least-hosted-first with the node name as
        a deterministic tie-break.  (An earlier version indexed
        candidates by ``chunk_id % len(nodes)``, which skews badly when
        chunk ids are strided -- a spatial chunker handing out every
        third id would pile all new replicas onto one node.)
        """
        want = self.effective_replication
        hosted = {n: 0 for n in self._nodes}
        for owners in self._replicas.values():
            for owner in owners:
                hosted[owner] += 1
        for cid, owners in sorted(self._replicas.items()):
            seen = set(owners)
            while len(owners) < want:
                cand = min(
                    (n for n in self._nodes if n not in seen),
                    key=lambda n: (hosted[n], n),
                )
                owners.append(cand)
                seen.add(cand)
                hosted[cand] += 1

    def __repr__(self):
        return (
            f"Placement(nodes={len(self._nodes)}, chunks={len(self._replicas)}, "
            f"replication={self.replication})"
        )
