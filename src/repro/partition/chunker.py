"""The two-level stripes/sub-stripes chunker.

Geometry
--------
Declination is divided into ``num_stripes`` equal-height stripes.  A
stripe at higher |dec| needs fewer chunks for the same chunk area, so
stripe ``s`` is divided into ``max(1, floor(360 * cos(dec_far) /
stripe_height))`` equal-width chunks, where ``dec_far`` is the stripe's
declination farthest from the equator (so a chunk is at least as wide as
the stripe is tall everywhere inside it; this matches the production
Qserv partitioner and reproduces the paper's 8983-chunk count for 85
stripes to within 0.05% -- we get 8987).

Identifiers
-----------
``chunk_id = stripe * 2 * num_stripes + chunk_in_stripe`` -- since a
stripe can hold at most ``floor(360/stripe_height) = 2 * num_stripes``
chunks, ids are unique and the stripe is recoverable by division.
``sub_chunk_id = sub_stripe_in_stripe * max_subchunks_per_row +
subchunk_in_row`` with the same reasoning one level down.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sphgeom import Region, Relationship, SphericalBox
from ..sphgeom.coords import normalize_ra

__all__ = ["Chunker", "ChunkLocation"]


@dataclass(frozen=True)
class ChunkLocation:
    """Full partition coordinates of a point."""

    chunk_id: int
    sub_chunk_id: int


class Chunker:
    """Assigns sky positions to chunks and sub-chunks.

    Parameters
    ----------
    num_stripes:
        Number of equal-height declination stripes (paper: 85).
    num_sub_stripes:
        Sub-stripes per stripe (paper: 12).
    overlap:
        Overlap radius in degrees stored with every sub-chunk so spatial
        joins up to this distance never need data from another node
        (paper: 0.01667 deg = 1 arc-minute).
    """

    def __init__(
        self,
        num_stripes: int = 85,
        num_sub_stripes: int = 12,
        overlap: float = 0.01667,
    ):
        if num_stripes < 1:
            raise ValueError(f"num_stripes must be >= 1, got {num_stripes}")
        if num_sub_stripes < 1:
            raise ValueError(f"num_sub_stripes must be >= 1, got {num_sub_stripes}")
        if overlap < 0:
            raise ValueError(f"overlap must be non-negative, got {overlap}")
        self.num_stripes = int(num_stripes)
        self.num_sub_stripes = int(num_sub_stripes)
        self.overlap = float(overlap)
        self.stripe_height = 180.0 / self.num_stripes
        self.sub_stripe_height = self.stripe_height / self.num_sub_stripes

        # Chunks per stripe, scaled by cos(dec) at the stripe edge
        # *farthest* from the equator: the chunk's angular width then
        # subtends at least the stripe height everywhere inside it.  For
        # 85 stripes this yields 8987 chunks, matching the paper's 8983
        # to within 0.05%.
        s = np.arange(self.num_stripes)
        dec_lo = -90.0 + s * self.stripe_height
        dec_hi = dec_lo + self.stripe_height
        farthest = np.maximum(np.abs(dec_lo), np.abs(dec_hi))
        cosines = np.cos(np.deg2rad(farthest))
        self._chunks_per_stripe = np.maximum(
            1, np.floor(360.0 * cosines / self.stripe_height).astype(np.int64)
        )
        self._chunk_width = 360.0 / self._chunks_per_stripe  # per stripe

        # Sub-chunks per sub-stripe row, per stripe.  Row (s, ss) spans
        # declinations like a miniature stripe; its sub-chunk count within
        # one chunk uses the same equal-area rule.
        ss = np.arange(self.num_sub_stripes)
        row_lo = dec_lo[:, None] + ss[None, :] * self.sub_stripe_height
        row_hi = row_lo + self.sub_stripe_height
        row_far = np.maximum(np.abs(row_lo), np.abs(row_hi))
        row_cos = np.cos(np.deg2rad(row_far))
        # Sub-chunks inside one chunk of this stripe, per sub-stripe row.
        self._subchunks_per_row = np.maximum(
            1,
            np.floor(
                self._chunk_width[:, None] * row_cos / self.sub_stripe_height
            ).astype(np.int64),
        )
        self._max_subchunks_per_row = self._subchunks_per_row.max(axis=1)

    # -- scalar/vector helpers ---------------------------------------------------

    def _stripe_of(self, dec):
        s = np.floor((np.asarray(dec, dtype=np.float64) + 90.0) / self.stripe_height)
        return np.clip(s, 0, self.num_stripes - 1).astype(np.int64)

    def _sub_stripe_of(self, dec, stripe):
        local = np.asarray(dec, dtype=np.float64) + 90.0 - stripe * self.stripe_height
        ss = np.floor(local / self.sub_stripe_height)
        return np.clip(ss, 0, self.num_sub_stripes - 1).astype(np.int64)

    # -- point assignment ----------------------------------------------------------

    def chunk_id(self, ra, dec):
        """Vectorized (ra, dec) -> chunk id."""
        scalar = np.isscalar(ra) and np.isscalar(dec)
        ra = normalize_ra(np.atleast_1d(ra))
        dec = np.atleast_1d(np.asarray(dec, dtype=np.float64))
        stripe = self._stripe_of(dec)
        nchunks = self._chunks_per_stripe[stripe]
        chunk = np.minimum((ra * nchunks / 360.0).astype(np.int64), nchunks - 1)
        cid = stripe * (2 * self.num_stripes) + chunk
        return int(cid[0]) if scalar else cid

    def sub_chunk_id(self, ra, dec):
        """Vectorized (ra, dec) -> sub-chunk id (within the containing chunk)."""
        scalar = np.isscalar(ra) and np.isscalar(dec)
        ra = normalize_ra(np.atleast_1d(ra))
        dec = np.atleast_1d(np.asarray(dec, dtype=np.float64))
        stripe = self._stripe_of(dec)
        nchunks = self._chunks_per_stripe[stripe]
        chunk = np.minimum((ra * nchunks / 360.0).astype(np.int64), nchunks - 1)
        width = self._chunk_width[stripe]
        ra_in_chunk = ra - chunk * width
        ss = self._sub_stripe_of(dec, stripe)
        nsc = self._subchunks_per_row[stripe, ss]
        sc = np.minimum((ra_in_chunk * nsc / width).astype(np.int64), nsc - 1)
        sc = np.maximum(sc, 0)
        scid = ss * self._max_subchunks_per_row[stripe] + sc
        return int(scid[0]) if scalar else scid

    def locate(self, ra: float, dec: float) -> ChunkLocation:
        """Scalar convenience: both levels at once."""
        return ChunkLocation(self.chunk_id(ra, dec), self.sub_chunk_id(ra, dec))

    # -- id arithmetic -------------------------------------------------------------

    def stripe_of_chunk(self, chunk_id: int) -> int:
        return int(chunk_id) // (2 * self.num_stripes)

    def _check_chunk(self, chunk_id: int) -> tuple[int, int]:
        stripe = self.stripe_of_chunk(chunk_id)
        chunk = int(chunk_id) % (2 * self.num_stripes)
        if not (0 <= stripe < self.num_stripes) or chunk >= self._chunks_per_stripe[stripe]:
            raise ValueError(f"invalid chunk id {chunk_id}")
        return stripe, chunk

    def all_chunks(self) -> np.ndarray:
        """Every valid chunk id, ascending."""
        out = []
        for s in range(self.num_stripes):
            base = s * 2 * self.num_stripes
            out.append(np.arange(base, base + self._chunks_per_stripe[s]))
        return np.concatenate(out)

    @property
    def num_chunks(self) -> int:
        return int(self._chunks_per_stripe.sum())

    def sub_chunks_of(self, chunk_id: int) -> np.ndarray:
        """Every valid sub-chunk id within ``chunk_id``, ascending."""
        stripe, _ = self._check_chunk(chunk_id)
        maxrow = self._max_subchunks_per_row[stripe]
        out = []
        for ss in range(self.num_sub_stripes):
            base = ss * maxrow
            out.append(np.arange(base, base + self._subchunks_per_row[stripe, ss]))
        return np.concatenate(out)

    # -- geometry --------------------------------------------------------------------

    def chunk_box(self, chunk_id: int) -> SphericalBox:
        """The (ra, dec) bounding box of a chunk."""
        stripe, chunk = self._check_chunk(chunk_id)
        dec_lo = -90.0 + stripe * self.stripe_height
        width = self._chunk_width[stripe]
        return SphericalBox(chunk * width, dec_lo, (chunk + 1) * width, dec_lo + self.stripe_height)

    def sub_chunk_box(self, chunk_id: int, sub_chunk_id: int) -> SphericalBox:
        """The (ra, dec) bounding box of a sub-chunk within a chunk."""
        stripe, chunk = self._check_chunk(chunk_id)
        maxrow = int(self._max_subchunks_per_row[stripe])
        ss, sc = divmod(int(sub_chunk_id), maxrow)
        if not (0 <= ss < self.num_sub_stripes) or sc >= self._subchunks_per_row[stripe, ss]:
            raise ValueError(f"invalid sub-chunk id {sub_chunk_id} for chunk {chunk_id}")
        dec_lo = -90.0 + stripe * self.stripe_height + ss * self.sub_stripe_height
        chunk_width = self._chunk_width[stripe]
        sub_width = chunk_width / self._subchunks_per_row[stripe, ss]
        ra_lo = chunk * chunk_width + sc * sub_width
        return SphericalBox(ra_lo, dec_lo, ra_lo + sub_width, dec_lo + self.sub_stripe_height)

    def chunk_overlap_box(self, chunk_id: int) -> SphericalBox:
        """Chunk box dilated by the overlap radius (the "full overlap" extent)."""
        return self.chunk_box(chunk_id).dilated(self.overlap)

    def sub_chunk_overlap_box(self, chunk_id: int, sub_chunk_id: int) -> SphericalBox:
        return self.sub_chunk_box(chunk_id, sub_chunk_id).dilated(self.overlap)

    # -- region coverage ----------------------------------------------------------------

    def chunks_intersecting(self, region: Region) -> np.ndarray:
        """Conservative, sorted set of chunk ids intersecting ``region``.

        This is the operation behind ``qserv_areaspec_box``: the czar
        only dispatches chunk queries for these ids.  Never omits a
        chunk that truly intersects the region.
        """
        bbox = region.bounding_box()
        if bbox.is_empty:
            return np.array([], dtype=np.int64)
        s_lo = int(self._stripe_of(max(bbox.dec_min, -90.0)))
        s_hi = int(self._stripe_of(min(bbox.dec_max, 90.0)))
        exact = isinstance(region, SphericalBox)
        out: list[int] = []
        for s in range(s_lo, s_hi + 1):
            width = self._chunk_width[s]
            nchunks = int(self._chunks_per_stripe[s])
            base = s * 2 * self.num_stripes
            candidates: set[int] = set()
            if bbox.full_ra:
                candidates.update(range(nchunks))
            else:
                for lo, hi in bbox._ra_intervals():
                    c_lo = int(lo / width)
                    c_hi = min(int(hi / width), nchunks - 1)
                    candidates.update(range(c_lo, c_hi + 1))
            for c in sorted(candidates):
                cid = base + c
                if exact or region.relate(self.chunk_box(cid)) is not Relationship.DISJOINT:
                    out.append(cid)
        return np.array(sorted(out), dtype=np.int64)

    def sub_chunks_intersecting(self, chunk_id: int, region: Region) -> np.ndarray:
        """Sorted sub-chunk ids of ``chunk_id`` intersecting ``region``."""
        out = [
            int(scid)
            for scid in self.sub_chunks_of(chunk_id)
            if region.relate(self.sub_chunk_box(chunk_id, scid)) is not Relationship.DISJOINT
        ]
        return np.array(out, dtype=np.int64)

    # -- overlap membership ----------------------------------------------------------------

    def in_sub_chunk_overlap(self, chunk_id: int, sub_chunk_id: int, ra, dec):
        """Rows belonging to the *overlap* of a sub-chunk.

        True for points outside the sub-chunk but within ``overlap``
        degrees of it (approximated conservatively by the dilated box).
        These are the rows stored in the ``FullOverlap`` companion tables
        that make near-neighbor joins correct across partition borders.
        """
        box = self.sub_chunk_box(chunk_id, sub_chunk_id)
        dilated = box.dilated(self.overlap)
        inside = box.contains(ra, dec)
        near = dilated.contains(ra, dec)
        return near & ~np.asarray(inside)

    def __repr__(self):
        return (
            f"Chunker(num_stripes={self.num_stripes}, "
            f"num_sub_stripes={self.num_sub_stripes}, overlap={self.overlap}, "
            f"num_chunks={self.num_chunks})"
        )
