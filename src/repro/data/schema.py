"""PT1.1-style catalog schemas and the Table 1 size estimates.

The column subset covers every column the paper's test queries touch
(sections 6.2): positions, per-band PSF fluxes, the ``uFlux_SG`` and
``uRadius_PS`` columns of the section 5.3 example, Source time-series
columns, and the partition bookkeeping columns (``chunkId``,
``subChunkId``) that production Qserv stores with every row.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sql.table import Column

__all__ = [
    "OBJECT_SCHEMA",
    "SOURCE_SCHEMA",
    "FORCED_SOURCE_SCHEMA",
    "CatalogSizeEstimate",
    "TABLE1_ESTIMATES",
    "BANDS",
]

#: LSST filter bands, in wavelength order.
BANDS = ("u", "g", "r", "i", "z", "y")

OBJECT_SCHEMA = [
    Column("objectId", "BIGINT"),
    Column("ra_PS", "DOUBLE"),
    Column("decl_PS", "DOUBLE"),
    Column("chunkId", "BIGINT"),
    Column("subChunkId", "BIGINT"),
    *[Column(f"{b}Flux_PS", "DOUBLE") for b in BANDS],
    Column("uFlux_SG", "DOUBLE"),
    Column("uRadius_PS", "DOUBLE"),
]

SOURCE_SCHEMA = [
    Column("sourceId", "BIGINT"),
    Column("objectId", "BIGINT"),
    Column("ra", "DOUBLE"),
    Column("decl", "DOUBLE"),
    Column("chunkId", "BIGINT"),
    Column("subChunkId", "BIGINT"),
    Column("taiMidPoint", "DOUBLE"),
    Column("psfFlux", "DOUBLE"),
    Column("psfFluxErr", "DOUBLE"),
]

FORCED_SOURCE_SCHEMA = [
    Column("forcedSourceId", "BIGINT"),
    Column("objectId", "BIGINT"),
    Column("chunkId", "BIGINT"),
    Column("subChunkId", "BIGINT"),
    Column("taiMidPoint", "DOUBLE"),
    Column("psfFlux", "DOUBLE"),
]


@dataclass(frozen=True)
class CatalogSizeEstimate:
    """One row of the paper's Table 1."""

    table: str
    num_rows: float
    row_bytes: float
    #: The paper's quoted raw footprint, in bytes (binary units).
    paper_footprint_bytes: float

    @property
    def computed_footprint_bytes(self) -> float:
        """rows x row size -- what Table 1's footprint column derives from."""
        return self.num_rows * self.row_bytes


_TB = 2.0**40
_PB = 2.0**50

#: Table 1: Estimates for LSST's final data release.
TABLE1_ESTIMATES = {
    "Object": CatalogSizeEstimate(
        table="Object", num_rows=26e9, row_bytes=2048.0, paper_footprint_bytes=48 * _TB
    ),
    "Source": CatalogSizeEstimate(
        table="Source", num_rows=1.8e12, row_bytes=650.0, paper_footprint_bytes=1.3 * _PB
    ),
    "ForcedSource": CatalogSizeEstimate(
        table="ForcedSource",
        num_rows=21e12,
        row_bytes=30.0,
        paper_footprint_bytes=620 * _TB,
    ),
}
