"""CSV ingest: loading external catalog files into the cluster.

Production Qserv ingests pipeline output (delimited text) through a
standalone partitioner that assigns every row its chunk and sub-chunk
before loading.  This module is that path for the reproduction:

- :func:`read_csv` -- a typed, streaming-friendly delimited reader onto
  a :class:`~repro.sql.table.Table` (no pandas; NumPy only);
- :func:`write_csv` -- the inverse, for exporting results;
- :func:`ingest_csv` -- read, partition (via any chunker), and load a
  catalog file onto a worker set in one call, returning the loader's
  report.

The reader is deliberately strict: a schema must be given or inferred
from a header + the first data row, ragged rows are an error, and empty
fields become NULL only for float columns (matching the engine's NULL
model).
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from ..partition import Placement
from ..qserv.metadata import CatalogMetadata
from ..qserv.secondary_index import SecondaryIndex
from ..sql import Column, Database, Table
from .loader import LoadReport, load_tables

__all__ = ["read_csv", "write_csv", "ingest_csv", "IngestError"]


class IngestError(ValueError):
    """Malformed input files or schema mismatches."""


def _parse_typed(raw_columns: dict[str, list[str]], schema: list[Column]) -> Table:
    arrays: dict[str, np.ndarray] = {}
    by_name = {c.name: c for c in schema}
    for name, values in raw_columns.items():
        col = by_name[name]
        dtype = col.dtype
        if dtype == np.dtype(object):
            arrays[name] = np.array(values, dtype=object)
            continue
        if np.issubdtype(dtype, np.floating):
            parsed = np.array(
                [float(v) if v != "" else np.nan for v in values], dtype=np.float64
            )
        elif np.issubdtype(dtype, np.bool_):
            parsed = np.array(
                [v.lower() in ("1", "true", "t", "yes") for v in values], dtype=bool
            )
        else:
            try:
                parsed = np.array([int(v) for v in values], dtype=np.int64)
            except ValueError as e:
                raise IngestError(f"column {name!r}: {e}") from e
        arrays[name] = parsed
    return Table("ingest", arrays)


def _infer_schema(header: list[str], first_row: list[str]) -> list[Column]:
    """Infer column types from the first data row (int, float, or text)."""
    out = []
    for name, value in zip(header, first_row):
        try:
            int(value)
            out.append(Column(name, "BIGINT"))
            continue
        # reprolint: disable=exception-swallow -- type sniffing: not an int, try float
        except ValueError:
            pass
        try:
            float(value)
            out.append(Column(name, "DOUBLE"))
            continue
        # reprolint: disable=exception-swallow -- type sniffing: not a number, keep TEXT
        except ValueError:
            pass
        out.append(Column(name, "TEXT"))
    return out


def read_csv(
    source,
    table_name: str,
    schema: list[Column] | None = None,
    delimiter: str = ",",
    has_header: bool = True,
) -> Table:
    """Read a delimited file (path, str content, or file object) to a Table.

    Without a ``schema``, a header row is required and types are
    inferred from the first data row.
    """
    if isinstance(source, Path):
        text = source.read_text()
    elif isinstance(source, str):
        # A string is a path only when it points at an existing file;
        # otherwise it is the content itself.
        is_pathlike = "\n" not in source and len(source) < 4096
        if is_pathlike and Path(source).is_file():
            text = Path(source).read_text()
        else:
            text = source
    else:
        text = source.read()
    lines = [ln for ln in text.splitlines() if ln.strip()]
    if not lines:
        raise IngestError("input is empty")

    if has_header:
        header = [h.strip() for h in lines[0].split(delimiter)]
        data_lines = lines[1:]
    else:
        if schema is None:
            raise IngestError("headerless input requires an explicit schema")
        header = [c.name for c in schema]
        data_lines = lines

    if schema is None:
        if not data_lines:
            raise IngestError("cannot infer types from a header-only file")
        schema = _infer_schema(header, [v.strip() for v in data_lines[0].split(delimiter)])
    by_name = {c.name for c in schema}
    missing = [h for h in header if h not in by_name]
    if missing:
        raise IngestError(f"columns {missing} not in the schema")

    raw: dict[str, list[str]] = {h: [] for h in header}
    for lineno, line in enumerate(data_lines, start=2 if has_header else 1):
        parts = [p.strip() for p in line.split(delimiter)]
        if len(parts) != len(header):
            raise IngestError(
                f"line {lineno}: expected {len(header)} fields, got {len(parts)}"
            )
        for h, p in zip(header, parts):
            raw[h].append(p)

    table = _parse_typed(raw, [c for c in schema if c.name in raw])
    return table.rename(table_name)


def write_csv(table: Table, destination, delimiter: str = ",") -> None:
    """Write a Table as delimited text with a header row."""
    buf = io.StringIO()
    buf.write(delimiter.join(table.column_names) + "\n")
    columns = [table.column(n) for n in table.column_names]
    for i in range(table.num_rows):
        fields = []
        for col in columns:
            v = col[i]
            if isinstance(v, (float, np.floating)) and np.isnan(v):
                fields.append("")
            else:
                fields.append(str(v))
        buf.write(delimiter.join(fields) + "\n")
    text = buf.getvalue()
    if isinstance(destination, (str, Path)):
        Path(destination).write_text(text)
    else:
        destination.write(text)


def ingest_csv(
    source,
    table_name: str,
    metadata: CatalogMetadata,
    chunker,
    placement: Placement,
    worker_dbs: dict[str, Database],
    schema: list[Column] | None = None,
    delimiter: str = ",",
    secondary_index: SecondaryIndex | None = None,
) -> LoadReport:
    """Read a catalog file, partition it, and load it onto the workers.

    The file must carry the partitioning columns the metadata names for
    ``table_name`` (e.g. ``ra_PS``/``decl_PS`` for Object).  Rows are
    assigned chunk/sub-chunk ids, ``FullOverlap`` companions are built
    for director tables, and the secondary index is extended -- the
    same contract as :func:`~repro.data.loader.load_tables`.
    """
    table = read_csv(source, table_name, schema=schema, delimiter=delimiter)
    if metadata.is_partitioned(table_name):
        info = metadata.info(table_name)
        for needed in (info.ra_column, info.dec_column):
            if needed not in table:
                raise IngestError(
                    f"partitioned table {table_name!r} requires column {needed!r}"
                )
        # The loader fills chunkId/subChunkId; add them if the file
        # doesn't carry them.
        cols = dict(table.columns())
        for bookkeeping in ("chunkId", "subChunkId"):
            if bookkeeping not in cols:
                cols[bookkeeping] = np.full(table.num_rows, -1, dtype=np.int64)
        table = Table(table_name, cols)
    return load_tables(
        {table_name: table},
        metadata,
        chunker,
        placement,
        worker_dbs,
        secondary_index=secondary_index,
    )
