"""Partition-aware data loading.

Splits logical tables into per-chunk physical tables on worker
databases (``Object_713``), fills the ``chunkId``/``subChunkId``
bookkeeping columns, builds the ``FullOverlap`` companion tables for
director tables (rows within the overlap radius outside each sub-chunk,
tagged with the sub-chunk they pad -- section 4.4), replicates chunks
according to the placement, and populates the objectId secondary index.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..partition import Chunker, Placement
from ..sql import Database, Table
from ..sql.wire import encode_table
from ..qserv.metadata import CatalogMetadata
from ..qserv.rewrite import chunk_table_name, overlap_table_name
from ..qserv.secondary_index import SecondaryIndex

__all__ = ["load_tables", "LoadReport"]


@dataclass
class LoadReport:
    """What the loader actually did."""

    chunks_loaded: dict[str, int] = field(default_factory=dict)
    rows_loaded: dict[str, int] = field(default_factory=dict)
    overlap_rows: dict[str, int] = field(default_factory=dict)
    empty_chunks: dict[str, int] = field(default_factory=dict)


def load_tables(
    tables: dict[str, Table],
    metadata: CatalogMetadata,
    chunker: Chunker,
    placement: Placement,
    worker_dbs: dict[str, Database],
    secondary_index: SecondaryIndex | None = None,
    checksums=None,
    stores=None,
) -> LoadReport:
    """Partition ``tables`` onto ``worker_dbs`` according to ``placement``.

    Every chunk id in the placement receives a physical table on each
    of its replica nodes -- empty where the logical table has no rows
    there, so any dispatched chunk query finds its tables.

    ``checksums`` (a :class:`repro.xrd.repair.ChunkChecksums`) records
    the reference digest of every chunk table as it is installed --
    replicas are byte-identical in the wire encoding, so ingest is the
    one moment the ground truth is known for free.  The integrity
    scrubber verifies replicas against these for the catalog's lifetime.

    ``stores`` optionally maps node name to a
    :class:`~repro.sql.colstore.ColumnStore`; tables landing on those
    nodes are persisted to disk and installed as mmap-backed tables, so
    a node's hosted data is bounded by its residency budget, not RAM.
    """
    report = LoadReport()
    stores = stores or {}
    for name, table in tables.items():
        if not metadata.is_partitioned(name):
            # Unpartitioned tables are replicated whole to every node.
            for node, db in worker_dbs.items():
                _install(db, stores.get(node), table.rename(name))
            report.rows_loaded[name] = table.num_rows * len(worker_dbs)
            continue
        _load_partitioned(
            name, table, metadata, chunker, placement, worker_dbs, report,
            secondary_index, checksums, stores,
        )
    return report


def _install(db: Database, store, table: Table) -> None:
    """Register ``table`` on ``db``, through the node's store if it has one."""
    if store is not None:
        table = store.save_table(table, table.name)
    db.create_table(table, overwrite=True)


def _load_partitioned(
    name: str,
    table: Table,
    metadata: CatalogMetadata,
    chunker: Chunker,
    placement: Placement,
    worker_dbs: dict[str, Database],
    report: LoadReport,
    secondary_index: SecondaryIndex | None,
    checksums=None,
    stores=None,
) -> None:
    stores = stores or {}
    info = metadata.info(name)
    ra = table.column(info.ra_column)
    dec = table.column(info.dec_column)
    n = table.num_rows

    cids = chunker.chunk_id(ra, dec) if n else np.empty(0, dtype=np.int64)
    scids = chunker.sub_chunk_id(ra, dec) if n else np.empty(0, dtype=np.int64)

    # Fill bookkeeping columns on a working copy of the column dict.
    cols = dict(table.columns())
    if "chunkId" in cols:
        cols["chunkId"] = cids
    if "subChunkId" in cols:
        cols["subChunkId"] = scids
    full = Table(name, cols)

    # Secondary index entries come from the director table.
    if secondary_index is not None and info.is_director and info.index_column:
        secondary_index.add_entries(table.column(info.index_column), cids, scids)

    # Group rows by chunk with one argsort.
    order = np.argsort(cids, kind="stable")
    sorted_cids = cids[order]
    uniq, starts = np.unique(sorted_cids, return_index=True)
    row_groups = {
        int(c): order[s:e]
        for c, s, e in zip(uniq, starts, np.append(starts[1:], n))
    }

    chunks = placement.chunk_ids
    loaded = empty = total_rows = total_overlap = 0
    for cid in chunks:
        rows = row_groups.get(cid, np.empty(0, dtype=np.int64))
        chunk_table = full.select_rows(rows).rename(chunk_table_name(name, cid))
        overlap_table = None
        if info.is_director:
            overlap_table = _build_overlap(
                name, full, ra, dec, chunker, cid
            )
            total_overlap += overlap_table.num_rows
        if checksums is not None:
            # One digest per table name covers every replica: the wire
            # encoding is a pure function of (name, columns, rows).
            checksums.record_bytes(
                chunk_table.name, encode_table(chunk_table, chunk_table.name)
            )
            if overlap_table is not None:
                checksums.record_bytes(
                    overlap_table.name,
                    encode_table(overlap_table, overlap_table.name),
                )
        for node in placement.replicas(cid):
            db = worker_dbs[node]
            store = stores.get(node)
            _install(db, store, chunk_table.rename(chunk_table.name))
            if overlap_table is not None:
                _install(db, store, overlap_table.rename(overlap_table.name))
        loaded += 1
        total_rows += len(rows)
        if len(rows) == 0:
            empty += 1

    report.chunks_loaded[name] = loaded
    report.rows_loaded[name] = total_rows
    report.empty_chunks[name] = empty
    if info.is_director:
        report.overlap_rows[name] = total_overlap


def _build_overlap(
    name: str,
    full: Table,
    ra: np.ndarray,
    dec: np.ndarray,
    chunker: Chunker,
    cid: int,
) -> Table:
    """The FullOverlap table of chunk ``cid``.

    Rows within ``overlap`` of a sub-chunk but outside it, with
    ``subChunkId`` set to the sub-chunk they pad.  A row near a corner
    appears once per padded sub-chunk -- that duplication is the price
    of node-local spatial joins and is how production Qserv stores it.
    """
    # Candidates: rows in the dilated chunk box but not in the chunk.
    chunk_box = chunker.chunk_box(cid)
    dilated = chunker.chunk_overlap_box(cid)
    candidate_mask = dilated.contains(ra, dec)
    candidates = np.flatnonzero(candidate_mask)
    pieces: list[tuple[int, np.ndarray]] = []
    if len(candidates):
        cand_ra = ra[candidates]
        cand_dec = dec[candidates]
        for scid in chunker.sub_chunks_of(cid):
            scid = int(scid)
            in_ovl = chunker.in_sub_chunk_overlap(cid, scid, cand_ra, cand_dec)
            rows = candidates[in_ovl]
            if len(rows):
                pieces.append((scid, rows))

    out_name = overlap_table_name(name, cid)
    if not pieces:
        empty = full.select_rows(np.empty(0, dtype=np.int64))
        return empty.rename(out_name)
    all_rows = np.concatenate([rows for _, rows in pieces])
    sub_ids = np.concatenate(
        [np.full(len(rows), scid, dtype=np.int64) for scid, rows in pieces]
    )
    sel = full.select_rows(all_rows)
    cols = dict(sel.columns())
    cols["chunkId"] = np.full(len(all_rows), cid, dtype=np.int64)
    cols["subChunkId"] = sub_ids
    return Table(out_name, cols)
