"""Seeded synthesis of a PT1.1-like catalog patch.

The PT1.1 data set "covers a spherical patch with right-ascension
between 358 and 5 degrees and declination between -7 and 7 degrees"
(section 6.1.2).  Objects are drawn uniformly *on the sphere* inside
that footprint (uniform in RA, uniform in sin(dec)); fluxes are
log-normal, giving realistic magnitude distributions for the paper's
color-cut queries; each object gets a Poisson-distributed family of
Source detections spread over an observation baseline.
"""

from __future__ import annotations

import numpy as np

from ..sphgeom import SphericalBox
from ..sql import Table

__all__ = ["PT11_FOOTPRINT", "synthesize_objects", "synthesize_sources"]

#: The PT1.1 footprint: RA 358..5 (wrapping), Dec -7..+7.
PT11_FOOTPRINT = SphericalBox(358.0, -7.0, 365.0, 7.0)

# Typical AB-magnitude ~ 21-24 range once through fluxToAbMag; chosen so
# the paper's color cuts (e.g. 21 < z < 21.5) select realistic fractions.
_FLUX_MEDIAN_JY = 10.0 ** ((8.9 - 22.5) / 2.5)
_FLUX_SIGMA_DEX = 0.6


def _uniform_sphere_points(rng: np.random.Generator, box: SphericalBox, n: int):
    """n points uniform on the sphere inside ``box`` (handles RA wrap)."""
    width = box.ra_extent()
    ra = box.ra_min + rng.uniform(0.0, width, n)
    ra = np.mod(ra, 360.0)
    z_lo = np.sin(np.deg2rad(box.dec_min))
    z_hi = np.sin(np.deg2rad(box.dec_max))
    dec = np.rad2deg(np.arcsin(rng.uniform(z_lo, z_hi, n)))
    return ra, dec


def synthesize_objects(
    num_objects: int,
    seed: int = 0,
    footprint: SphericalBox = PT11_FOOTPRINT,
    id_offset: int = 0,
) -> Table:
    """A synthetic Object table over ``footprint``.

    ``chunkId``/``subChunkId`` are filled with -1; the loader assigns
    them for the partitioning actually in use.
    """
    if num_objects < 0:
        raise ValueError("num_objects must be non-negative")
    rng = np.random.default_rng(seed)
    ra, dec = _uniform_sphere_points(rng, footprint, num_objects)

    cols: dict[str, np.ndarray] = {
        "objectId": np.arange(id_offset, id_offset + num_objects, dtype=np.int64),
        "ra_PS": ra,
        "decl_PS": dec,
        "chunkId": np.full(num_objects, -1, dtype=np.int64),
        "subChunkId": np.full(num_objects, -1, dtype=np.int64),
    }
    # Per-band fluxes: correlated log-normal draws so colors (flux
    # ratios across bands) have realistic ~0.1-1 mag scatter.
    base = rng.normal(0.0, _FLUX_SIGMA_DEX, num_objects)
    from .schema import BANDS

    for i, band in enumerate(BANDS):
        color_term = rng.normal(0.0, 0.15, num_objects) + 0.05 * i
        cols[f"{band}Flux_PS"] = _FLUX_MEDIAN_JY * 10.0 ** (base + color_term)
    cols["uFlux_SG"] = cols["uFlux_PS"] * 10.0 ** rng.normal(0.0, 0.05, num_objects)
    cols["uRadius_PS"] = rng.gamma(2.0, 0.03, num_objects)
    return Table("Object", cols)


def synthesize_sources(
    objects: Table,
    mean_sources_per_object: float = 3.0,
    seed: int = 1,
    time_baseline_days: float = 3650.0,
    id_offset: int = 0,
    astrometric_scatter_deg: float = 5e-5,
    variable_fraction: float = 0.0,
    variability_amplitude_mag: float = 0.4,
) -> Table:
    """Per-object detection families -- the Source table.

    The paper's full data set has ~41 sources per object (k in SHV2);
    tests use a smaller mean.  Each source scatters around its object's
    position by ``astrometric_scatter_deg`` (0.18 arcsec default) and
    around its flux by measurement noise, with ``taiMidPoint`` spread
    over a 10-year survey baseline.

    ``variable_fraction`` of the objects are made genuinely variable:
    their fluxes modulate sinusoidally (period drawn from 0.5-100 days,
    amplitude ``variability_amplitude_mag``), giving time-series
    analyses something real to find.
    """
    if mean_sources_per_object < 0:
        raise ValueError("mean_sources_per_object must be non-negative")
    if not 0.0 <= variable_fraction <= 1.0:
        raise ValueError("variable_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    n_obj = objects.num_rows
    counts = rng.poisson(mean_sources_per_object, n_obj)
    total = int(counts.sum())

    parent = np.repeat(np.arange(n_obj), counts)
    obj_ids = objects.column("objectId")[parent]
    ra = objects.column("ra_PS")[parent]
    dec = objects.column("decl_PS")[parent]
    flux = objects.column("uFlux_PS")[parent]
    tai = rng.uniform(0.0, time_baseline_days, total)

    # Intrinsic variability: per-object sinusoidal flux modulation.
    if variable_fraction > 0 and n_obj:
        is_var = rng.random(n_obj) < variable_fraction
        periods = rng.uniform(0.5, 100.0, n_obj)
        phases = rng.uniform(0.0, 2.0 * np.pi, n_obj)
        amp_flux = 10.0 ** (0.4 * variability_amplitude_mag) - 1.0
        modulation = 1.0 + np.where(is_var[parent], amp_flux, 0.0) * np.sin(
            2.0 * np.pi * tai / periods[parent] + phases[parent]
        )
        flux = flux * modulation

    cos_dec = np.cos(np.deg2rad(dec))
    ra_s = np.mod(
        ra + rng.normal(0.0, astrometric_scatter_deg, total) / np.maximum(cos_dec, 1e-6),
        360.0,
    )
    dec_s = np.clip(dec + rng.normal(0.0, astrometric_scatter_deg, total), -90.0, 90.0)
    flux_err = 0.05 * flux
    cols = {
        "sourceId": np.arange(id_offset, id_offset + total, dtype=np.int64),
        "objectId": obj_ids.astype(np.int64),
        "ra": ra_s,
        "decl": dec_s,
        "chunkId": np.full(total, -1, dtype=np.int64),
        "subChunkId": np.full(total, -1, dtype=np.int64),
        "taiMidPoint": tai,
        "psfFlux": flux + rng.normal(0.0, 1.0, total) * flux_err,
        "psfFluxErr": flux_err,
    }
    return Table("Source", cols)
