"""One-call construction of a complete in-process Qserv cluster.

Wires together everything the paper's Figure 1 shows: synthetic data,
the chunker, worker nodes (SQL engine + ofs plugin + data server), the
redirector, the secondary index, the czar, and the MySQL-proxy-shaped
frontend.  This is the entry point examples and integration tests use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..partition import Chunker, Placement
from ..qserv import (
    CatalogMetadata,
    Czar,
    QservFrontend,
    QservProxy,
    QservWorker,
    SecondaryIndex,
)
from ..qserv.membership import ClusterMembership
from ..sql import Database, Table
from ..xrd import DataServer, Redirector
from ..xrd.health import HealthTracker
from ..xrd.protocol import query_path
from ..xrd.repair import ChunkChecksums, IntegrityScrubber, RepairManager
from .loader import LoadReport, load_tables
from .synthesis import synthesize_objects, synthesize_sources

__all__ = ["QservTestbed", "build_testbed"]


@dataclass
class QservTestbed:
    """A running in-process cluster and its construction artifacts."""

    chunker: Chunker
    metadata: CatalogMetadata
    redirector: Redirector
    workers: dict[str, QservWorker]
    servers: dict[str, DataServer]
    placement: Placement
    secondary_index: SecondaryIndex
    czar: Czar
    proxy: QservProxy
    frontend: QservFrontend
    tables: dict[str, Table]
    load_report: LoadReport
    health: HealthTracker
    checksums: ChunkChecksums
    repair: RepairManager
    scrubber: IntegrityScrubber
    membership: ClusterMembership

    def query(self, sql: str, **kwargs):
        """Submit a query through the proxy (kwargs reach Czar.submit)."""
        return self.proxy.query(sql, **kwargs)

    def shutdown(self):
        self.frontend.shutdown()
        self.repair.stop()
        self.scrubber.stop()
        self.czar.close()
        for w in self.workers.values():
            w.shutdown()


def build_testbed(
    num_workers: int = 4,
    num_objects: int = 2000,
    mean_sources_per_object: float = 3.0,
    num_stripes: int = 18,
    num_sub_stripes: int = 6,
    overlap: float = 0.05,
    seed: int = 0,
    worker_slots: int = 0,
    replication: int = 1,
    dispatch_parallelism: int = 4,
    wire_format: str = "binary",
    objects: Table | None = None,
    sources: Table | None = None,
    chunker=None,
    retry_policy=None,
    hedge_policy=None,
    health=None,
    frontend_root=None,
) -> QservTestbed:
    """Build, load, and wire a full cluster.

    With default arguments this synthesizes a PT1.1-like patch; pass
    ``objects``/``sources`` (e.g. duplicator output) to load custom
    data.  ``worker_slots=0`` executes chunk queries inline
    (deterministic); >0 starts that many threads per worker, the
    paper's configuration being 4.  ``wire_format`` selects the result
    transport: ``"binary"`` (default) or the paper-faithful
    ``"sqldump"``.  ``chunker`` overrides the default
    box chunker -- pass an :class:`~repro.partition.HtmChunker` to run
    the whole stack on the section 7.5 alternate partitioning.
    """
    metadata = CatalogMetadata.lsst_default()
    if chunker is None:
        chunker = Chunker(num_stripes, num_sub_stripes, overlap)

    if objects is None:
        objects = synthesize_objects(num_objects, seed=seed)
    if sources is None:
        sources = synthesize_sources(
            objects, mean_sources_per_object, seed=seed + 1
        )
    tables = {"Object": objects, "Source": sources}

    # Chunks to place: every chunk holding any data from any table.
    present: set[int] = set()
    for name, table in tables.items():
        info = metadata.info(name)
        if table.num_rows:
            cids = chunker.chunk_id(
                table.column(info.ra_column), table.column(info.dec_column)
            )
            present.update(int(c) for c in np.unique(cids))
    if not present:
        raise ValueError("no data to load; increase num_objects")

    node_names = [f"worker-{i:03d}" for i in range(num_workers)]
    placement = Placement(sorted(present), node_names, replication=replication)

    redirector = Redirector()
    workers: dict[str, QservWorker] = {}
    servers: dict[str, DataServer] = {}
    for node in node_names:
        worker = QservWorker(node, Database(metadata.database), slots=worker_slots)
        server = DataServer(node, plugin=worker)
        redirector.register(server)
        workers[node] = worker
        servers[node] = server

    # Every replica host exports the chunk's dispatch path, giving the
    # redirector real fail-over choices.
    for cid in placement.chunk_ids:
        for node in placement.replicas(cid):
            servers[node].export(query_path(cid))

    secondary_index = SecondaryIndex()
    checksums = ChunkChecksums()
    load_report = load_tables(
        tables,
        metadata,
        chunker,
        placement,
        {n: w.db for n, w in workers.items()},
        secondary_index=secondary_index,
        checksums=checksums,
    )
    secondary_index.finalize()

    # The self-healing plane: one health tracker shared by czar and
    # repair, a repair manager subscribed to breaker-open transitions,
    # a scrubber that heals what it quarantines, and the membership
    # lifecycle over all of it.  Background threads stay off here --
    # tests drive repair_all()/scrub_all() deterministically; call
    # testbed.repair.start() / testbed.scrubber.start() to run live.
    if health is None:
        health = HealthTracker()
    repair = RepairManager(redirector, placement, checksums=checksums, health=health)
    health.add_listener(repair.on_breaker)
    scrubber = IntegrityScrubber(redirector, checksums=checksums, repair=repair)
    membership = ClusterMembership(
        redirector,
        placement,
        workers,
        servers,
        repair,
        metadata=metadata,
        worker_slots=worker_slots,
    )

    czar = Czar(
        redirector,
        metadata,
        chunker,
        secondary_index=secondary_index,
        available_chunks=placement.chunk_ids,
        dispatch_parallelism=dispatch_parallelism,
        wire_format=wire_format,
        retry_policy=retry_policy,
        hedge_policy=hedge_policy,
        health=health,
        repair=repair,
    )
    proxy = QservProxy(czar)
    # The multi-tenant tier over the czar: admission control, result
    # cache, MyDB, and the durable batch job queue.  Pass
    # ``frontend_root`` to persist the job journal across testbeds
    # (crash-recovery tests rebuild on the same directory).
    frontend = QservFrontend(czar, root=frontend_root)
    return QservTestbed(
        chunker=chunker,
        metadata=metadata,
        redirector=redirector,
        workers=workers,
        servers=servers,
        placement=placement,
        secondary_index=secondary_index,
        czar=czar,
        proxy=proxy,
        frontend=frontend,
        tables=tables,
        load_report=load_report,
        health=health,
        checksums=checksums,
        repair=repair,
        scrubber=scrubber,
        membership=membership,
    )
