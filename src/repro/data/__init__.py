"""Catalog schemas, synthetic data generation, and partition-aware loading.

The paper's test data is the PT1.1 data-challenge catalog, spatially
replicated ("duplicated") to cover the sky: an Object table of 1.7e9
rows and a Source table of 5.5e10 rows.  This subpackage provides the
same machinery at configurable scale:

- :mod:`~repro.data.schema` -- PT1.1-style Object/Source/ForcedSource
  schemas and the full-survey size estimates behind Table 1;
- :mod:`~repro.data.synthesis` -- seeded random generation of a PT1.1
  footprint patch (RA 358..5 deg, Dec -7..+7 deg);
- :mod:`~repro.data.duplicator` -- spherical-rectangle replication with
  the paper's non-linear RA transformation as a function of
  declination, preserving spatial density;
- :mod:`~repro.data.loader` -- chunk/sub-chunk partitioning of
  synthesized tables onto worker databases, overlap-table
  construction, and secondary-index population;
- :mod:`~repro.data.cluster` -- one-call construction of a complete
  in-process Qserv cluster (redirector, workers, czar, loaded data).
"""

from .schema import (
    OBJECT_SCHEMA,
    SOURCE_SCHEMA,
    FORCED_SOURCE_SCHEMA,
    TABLE1_ESTIMATES,
    CatalogSizeEstimate,
)
from .synthesis import PT11_FOOTPRINT, synthesize_objects, synthesize_sources
from .duplicator import SkyDuplicator
from .loader import load_tables, LoadReport
from .ingest import read_csv, write_csv, ingest_csv, IngestError
from .cluster import QservTestbed, build_testbed

__all__ = [
    "OBJECT_SCHEMA",
    "SOURCE_SCHEMA",
    "FORCED_SOURCE_SCHEMA",
    "TABLE1_ESTIMATES",
    "CatalogSizeEstimate",
    "PT11_FOOTPRINT",
    "synthesize_objects",
    "synthesize_sources",
    "SkyDuplicator",
    "load_tables",
    "LoadReport",
    "read_csv",
    "write_csv",
    "ingest_csv",
    "IngestError",
    "QservTestbed",
    "build_testbed",
]
