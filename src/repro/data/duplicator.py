"""The sky duplicator (paper section 6.1.2).

"This patch was treated as a spherical rectangle and replicated over
the sky by transforming duplicate rows' RA and declination columns,
taking care to maintain spatial distance and density by a non-linear
transformation of right-ascension as a function of declination."

The transformation: a copy translated to band-center declination
``dec_c`` keeps true angular offsets by scaling RA offsets with
``cos(dec_patch_center) / cos(dec')`` per row -- RA compresses toward
the poles exactly as the metric demands, so object densities (objects
per square degree) are preserved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..sphgeom import SphericalBox
from ..sql import Table

__all__ = ["SkyDuplicator", "CopyTransform"]


@dataclass(frozen=True)
class CopyTransform:
    """Placement of one duplicate of the base patch."""

    copy_index: int
    ra_center: float
    dec_center: float


class SkyDuplicator:
    """Replicates a base patch over a target declination band.

    Parameters
    ----------
    patch:
        Footprint of the base data (e.g. the PT1.1 box).
    dec_min, dec_max:
        Declination limits for replication.  The paper clipped Source
        data to -54..+54 for disk space; the full partitioning covers
        -90..+90.
    """

    def __init__(self, patch: SphericalBox, dec_min: float = -54.0, dec_max: float = 54.0):
        if patch.is_empty:
            raise ValueError("patch footprint is empty")
        if dec_min >= dec_max:
            raise ValueError("dec_min must be below dec_max")
        self.patch = patch
        self.dec_min = float(dec_min)
        self.dec_max = float(dec_max)
        self.patch_width = patch.ra_extent()
        self.patch_height = patch.dec_extent()
        self.patch_ra_center = (patch.ra_min + self.patch_width / 2.0) % 360.0
        self.patch_dec_center = (patch.dec_min + patch.dec_max) / 2.0

    # -- placement ------------------------------------------------------------

    def transforms(self) -> list[CopyTransform]:
        """Copy placements tiling the band, more copies where cos(dec) is big.

        Each declination row holds ``floor(360 * cos(dec_row) /
        patch_width_at_equator)`` copies, so the density of copies per
        solid angle stays constant -- the same equal-area logic as the
        chunker.
        """
        out: list[CopyTransform] = []
        idx = 0
        n_rows = max(1, int(math.floor((self.dec_max - self.dec_min) / self.patch_height)))
        for row in range(n_rows):
            dec_c = self.dec_min + (row + 0.5) * self.patch_height
            cos_c = math.cos(math.radians(dec_c))
            effective_width = self.patch_width / max(cos_c, 1e-9)
            n_copies = max(1, int(math.floor(360.0 / effective_width)))
            for k in range(n_copies):
                out.append(
                    CopyTransform(
                        copy_index=idx,
                        ra_center=(k + 0.5) * (360.0 / n_copies),
                        dec_center=dec_c,
                    )
                )
                idx += 1
        return out

    # -- row transformation ---------------------------------------------------------

    def apply(
        self,
        transform: CopyTransform,
        ra: np.ndarray,
        dec: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Map base-patch positions into the copy's location.

        The declination shift is rigid; the RA offset from the patch
        center is scaled by ``cos(dec_patch_center)/cos(dec_new)`` per
        row -- the non-linear RA transformation that preserves angular
        separations (and hence density) at the new declination.
        """
        ra = np.asarray(ra, dtype=np.float64)
        dec = np.asarray(dec, dtype=np.float64)
        # Signed RA offset from the patch center, in (-180, 180].
        d_ra = np.mod(ra - self.patch_ra_center + 180.0, 360.0) - 180.0
        new_dec = dec - self.patch_dec_center + transform.dec_center
        new_dec = np.clip(new_dec, -90.0, 90.0)
        cos_old = math.cos(math.radians(self.patch_dec_center))
        cos_new = np.cos(np.deg2rad(new_dec))
        scale = cos_old / np.maximum(cos_new, 1e-9)
        new_ra = np.mod(transform.ra_center + d_ra * scale, 360.0)
        return new_ra, new_dec

    # -- whole-table duplication ---------------------------------------------------------

    def duplicate_table(
        self,
        table: Table,
        ra_column: str,
        dec_column: str,
        id_columns: tuple[str, ...] = ("objectId",),
        max_copies: int | None = None,
    ) -> Table:
        """The full synthesized table: every copy concatenated.

        ``id_columns`` are offset per copy so identifiers stay globally
        unique (copy k adds ``k * (max_id + 1)``).
        """
        transforms = self.transforms()
        if max_copies is not None:
            transforms = transforms[:max_copies]
        base_cols = table.columns()
        n = table.num_rows
        id_strides = {}
        for col in id_columns:
            if col in table:
                arr = table.column(col)
                id_strides[col] = int(arr.max()) + 1 if len(arr) else 1

        out: dict[str, list[np.ndarray]] = {name: [] for name in base_cols}
        for t in transforms:
            new_ra, new_dec = self.apply(
                t, base_cols[ra_column], base_cols[dec_column]
            )
            for name, arr in base_cols.items():
                if name == ra_column:
                    out[name].append(new_ra)
                elif name == dec_column:
                    out[name].append(new_dec)
                elif name in id_strides:
                    out[name].append(arr + t.copy_index * id_strides[name])
                else:
                    out[name].append(arr)
        merged = {name: np.concatenate(parts) for name, parts in out.items()}
        return Table(table.name, merged)

    def expansion_factor(self) -> int:
        """How many copies a full replication produces."""
        return len(self.transforms())
