"""Scan scheduling: FIFO (what the paper measured) vs shared scanning.

Section 4.3 describes *shared scanning* (convoy scheduling): with
table scans the norm, concurrent full-scan queries should share one
physical read of each table piece instead of issuing competing scans
that randomize disk access.  The paper's prototype had not implemented
it yet ("Shared scanning is planned for implementation later this
year"), which is why Figure 14's two concurrent HV2 queries each take
twice their solo time.  This subpackage implements both policies so the
ablation bench can quantify exactly that gap.
"""

from .shared_scan import (
    FifoScanScheduler,
    SharedScanScheduler,
    ScanQuery,
    ScanSchedule,
)

__all__ = [
    "FifoScanScheduler",
    "SharedScanScheduler",
    "ScanQuery",
    "ScanSchedule",
]
