"""Shared scanning (convoy scheduling) vs naive FIFO scans.

Model: a node stores a table as ``num_pieces`` equal pieces.  A scan
query must *process* every piece (in any rotational order).  Reading a
piece from disk costs ``piece_read_time`` of exclusive disk time;
processing a resident piece costs ``piece_cpu_time`` per query and
parallelizes across queries (CPU is not the bottleneck; section 7.3).

- :class:`FifoScanScheduler` -- each query performs its own full read
  pass.  Concurrent scans interleave on the disk and the effective read
  rate degrades by a seek penalty (this is the measured Figure 14
  behavior: two HV2 queries take twice as long each).
- :class:`SharedScanScheduler` -- one cyclic scan reads pieces; every
  attached query processes the piece while it is in memory (queries
  joining mid-scan wrap around).  Results for N queries arrive "in
  little more than the time for a single full-scan query" (section
  4.3).

Both schedulers are deterministic and need no event engine: time
advances piece by piece.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ScanQuery", "ScanSchedule", "FifoScanScheduler", "SharedScanScheduler"]


@dataclass(frozen=True)
class ScanQuery:
    """One full-scan query arriving at a node."""

    query_id: int
    arrival_time: float = 0.0


@dataclass
class ScanSchedule:
    """Completion times per query plus disk accounting."""

    completion_times: dict[int, float]
    total_disk_read_time: float
    pieces_read: int

    def makespan(self) -> float:
        return max(self.completion_times.values()) if self.completion_times else 0.0

    def mean_latency(self, queries: list[ScanQuery]) -> float:
        if not queries:
            return 0.0
        return sum(
            self.completion_times[q.query_id] - q.arrival_time for q in queries
        ) / len(queries)


class FifoScanScheduler:
    """Independent scans; concurrency costs a seek penalty.

    With ``k`` scans in flight the disk delivers ``1/penalty(k)`` of its
    sequential rate to each (default penalty: ``k`` ways of sharing plus
    20% per extra scan of seek loss -- competing sequential streams turn
    into random access, section 4.3).
    """

    def __init__(
        self,
        num_pieces: int,
        piece_read_time: float,
        piece_cpu_time: float = 0.0,
        seek_penalty_per_scan: float = 0.2,
    ):
        if num_pieces < 1:
            raise ValueError("num_pieces must be >= 1")
        self.num_pieces = num_pieces
        self.piece_read_time = piece_read_time
        self.piece_cpu_time = piece_cpu_time
        self.seek_penalty_per_scan = seek_penalty_per_scan

    def simulate(self, queries: list[ScanQuery]) -> ScanSchedule:
        # March time forward piece-read by piece-read.  Every active
        # query owns an independent scan cursor.
        remaining = {q.query_id: self.num_pieces for q in queries}
        arrivals = {q.query_id: q.arrival_time for q in queries}
        completion: dict[int, float] = {}
        t = 0.0
        disk_time = 0.0
        pieces_read = 0
        while len(completion) < len(queries):
            active = [
                qid
                for qid, rem in remaining.items()
                if rem > 0 and arrivals[qid] <= t
            ]
            if not active:
                # Jump to the next arrival.
                t = min(a for qid, a in arrivals.items() if qid not in completion)
                continue
            # One round: each active query reads one piece.  The disk
            # serves k piece-reads, each slowed by the interleaving.
            k = len(active)
            seek_factor = 1.0 + self.seek_penalty_per_scan * (k - 1)
            t += k * self.piece_read_time * seek_factor
            for qid in active:
                remaining[qid] -= 1
                pieces_read += 1
                disk_time += self.piece_read_time
                if remaining[qid] == 0:
                    completion[qid] = t + self.piece_cpu_time
        return ScanSchedule(completion, disk_time, pieces_read)


class SharedScanScheduler:
    """One cyclic scan; all queries attach and wrap around."""

    def __init__(
        self,
        num_pieces: int,
        piece_read_time: float,
        piece_cpu_time: float = 0.0,
    ):
        if num_pieces < 1:
            raise ValueError("num_pieces must be >= 1")
        self.num_pieces = num_pieces
        self.piece_read_time = piece_read_time
        self.piece_cpu_time = piece_cpu_time

    def simulate(self, queries: list[ScanQuery]) -> ScanSchedule:
        if not queries:
            return ScanSchedule({}, 0.0, 0)
        # The scan runs continuously from the first arrival.  A query
        # joining at piece p processes pieces p, p+1, ..., wrapping to
        # finish at piece (p-1) one full revolution later.
        start = min(q.arrival_time for q in queries)
        step = self.piece_read_time + self.piece_cpu_time
        completion: dict[int, float] = {}
        pieces_read = 0
        disk_time = 0.0
        # The scan stops once every query has completed a revolution.
        # Piece i is read at time start + i*step (i counts total pieces
        # streamed, position i % num_pieces).
        for q in queries:
            # First piece index at or after the query's arrival.
            if q.arrival_time <= start:
                first = 0
            else:
                first = int((q.arrival_time - start + step - 1e-12) // step)
                first = max(first, 0)
            last = first + self.num_pieces - 1
            completion[q.query_id] = start + (last + 1) * step
        total_pieces = max(
            int(round((t - start) / step)) for t in completion.values()
        )
        pieces_read = total_pieces
        disk_time = total_pieces * self.piece_read_time
        return ScanSchedule(completion, disk_time, pieces_read)
