"""Hierarchical Triangular Mesh (HTM) pixelization.

Section 7.5 of the paper proposes HTM (Szalay et al.) as an alternate
partitioning scheme producing partitions with less area variation than
rectangular (ra, dec) fragmentation, which distorts badly near the poles.
This module implements a genuine HTM pixelization:

- the sphere is split into 8 root spherical triangles ("trixels"),
  ids 8..15 (S0..S3 = 8..11, N0..N3 = 12..15);
- each trixel splits into 4 children by edge-midpoint subdivision, and a
  child's id is ``parent_id * 4 + k`` for corner children k = 0..2 and
  the center child k = 3;
- a level-L trixel id therefore occupies ids ``[8 * 4**L, 16 * 4**L)``.

Provided operations: vectorized point -> trixel id lookup, trixel id ->
vertex recovery, trixel area, and conservative region -> trixel-id-set
coverage ("envelope") used to route spatially-restricted queries.
"""

from __future__ import annotations

import math

import numpy as np

from .circle import SphericalCircle
from .coords import angular_separation_vectors, unit_vector, vector_to_radec
from .region import Region, Relationship

__all__ = ["HtmPixelization"]

# Root octahedron vertices (the standard HTM basis).
_V = np.array(
    [
        [0.0, 0.0, 1.0],  # v0: north pole
        [1.0, 0.0, 0.0],  # v1
        [0.0, 1.0, 0.0],  # v2
        [-1.0, 0.0, 0.0],  # v3
        [0.0, -1.0, 0.0],  # v4
        [0.0, 0.0, -1.0],  # v5: south pole
    ]
)

# Root trixels in id order 8..15: S0..S3 then N0..N3 (Szalay et al. layout).
_ROOTS = np.array(
    [
        [_V[1], _V[5], _V[2]],  # S0 -> 8
        [_V[2], _V[5], _V[3]],  # S1 -> 9
        [_V[3], _V[5], _V[4]],  # S2 -> 10
        [_V[4], _V[5], _V[1]],  # S3 -> 11
        [_V[1], _V[0], _V[4]],  # N0 -> 12
        [_V[4], _V[0], _V[3]],  # N1 -> 13
        [_V[3], _V[0], _V[2]],  # N2 -> 14
        [_V[2], _V[0], _V[1]],  # N3 -> 15
    ]
)

# Boundary tolerance: points exactly on a shared edge must land in
# exactly one trixel, so the half-space tests use a small negative slack
# on the first-match side.
_EPS = 1.0e-12


def _normalized(v):
    return v / np.linalg.norm(v, axis=-1, keepdims=True)


def _children(a, b, c):
    """The four child triangles of trixel (a, b, c), in child-index order."""
    w0 = _normalized(b + c)
    w1 = _normalized(a + c)
    w2 = _normalized(a + b)
    return [
        (a, w2, w1),  # child 0
        (b, w0, w2),  # child 1
        (c, w1, w0),  # child 2
        (w0, w1, w2),  # child 3 (center)
    ]


class HtmPixelization:
    """HTM pixelization at a fixed subdivision ``level``.

    Level 0 is the 8 root trixels; each extra level multiplies the trixel
    count by 4.  Level 20 is the traditional fine limit; we cap at 24.
    """

    MAX_LEVEL = 24

    def __init__(self, level: int):
        if not 0 <= level <= self.MAX_LEVEL:
            raise ValueError(f"HTM level must be in [0, {self.MAX_LEVEL}], got {level}")
        self.level = level

    # -- id arithmetic -------------------------------------------------------

    @property
    def num_trixels(self) -> int:
        return 8 * 4**self.level

    def id_range(self) -> tuple[int, int]:
        """Half-open range of valid trixel ids at this level."""
        lo = 8 * 4**self.level
        return lo, 2 * lo

    @staticmethod
    def level_of(trixel_id: int) -> int:
        """The subdivision level encoded by a trixel id."""
        if trixel_id < 8:
            raise ValueError(f"invalid trixel id {trixel_id}")
        return (int(trixel_id).bit_length() - 4) // 2

    # -- point -> id ----------------------------------------------------------

    def index_points(self, ra, dec):
        """Vectorized (ra, dec) -> trixel id at this pixelization's level.

        Scalars in, scalar out; arrays in, ``int64`` array out.  Each
        level performs three vectorized half-space sign tests per child
        for every point still being refined.
        """
        scalar = np.isscalar(ra) and np.isscalar(dec)
        p = unit_vector(np.atleast_1d(ra), np.atleast_1d(dec))  # (n, 3)
        n = p.shape[0]

        # Assign root trixels.
        ids = np.empty(n, dtype=np.int64)
        tri = np.empty((n, 3, 3), dtype=np.float64)
        unassigned = np.ones(n, dtype=bool)
        for k in range(8):
            a, b, c = _ROOTS[k]
            inside = unassigned & self._inside(p, a, b, c)
            ids[inside] = 8 + k
            tri[inside] = _ROOTS[k]
            unassigned &= ~inside
        if unassigned.any():
            # Numerical edge case: snap leftover points (exactly on a
            # shared edge with adverse rounding) to the nearest root by
            # centroid distance.
            rest = np.where(unassigned)[0]
            cents = _normalized(_ROOTS.sum(axis=1))  # (8, 3)
            dots = p[rest] @ cents.T
            best = np.argmax(dots, axis=1)
            ids[rest] = 8 + best
            tri[rest] = _ROOTS[best]

        for _ in range(self.level):
            a = tri[:, 0, :]
            b = tri[:, 1, :]
            c = tri[:, 2, :]
            w0 = _normalized(b + c)
            w1 = _normalized(a + c)
            w2 = _normalized(a + b)
            kids = [
                (a, w2, w1),
                (b, w0, w2),
                (c, w1, w0),
                (w0, w1, w2),
            ]
            child = np.full(n, 3, dtype=np.int64)  # default: center child
            undecided = np.ones(n, dtype=bool)
            for k in range(3):
                ka, kb, kc = kids[k]
                inside = undecided & self._inside_rows(p, ka, kb, kc)
                child[inside] = k
                undecided &= ~inside
            ids = ids * 4 + child
            stacked = np.stack(
                [np.stack(kid, axis=1) for kid in kids], axis=1
            )  # (n, 4, 3, 3)
            tri = stacked[np.arange(n), child]
        if scalar:
            return int(ids[0])
        return ids

    @staticmethod
    def _inside(p, a, b, c):
        """Points (n,3) inside fixed triangle (a, b, c)."""
        return (
            (p @ np.cross(a, b) >= -_EPS)
            & (p @ np.cross(b, c) >= -_EPS)
            & (p @ np.cross(c, a) >= -_EPS)
        )

    @staticmethod
    def _inside_rows(p, a, b, c):
        """Row-wise test: p[i] against triangle (a[i], b[i], c[i])."""
        t1 = np.sum(p * np.cross(a, b), axis=1) >= -_EPS
        t2 = np.sum(p * np.cross(b, c), axis=1) >= -_EPS
        t3 = np.sum(p * np.cross(c, a), axis=1) >= -_EPS
        return t1 & t2 & t3

    # -- id -> geometry ---------------------------------------------------------

    def trixel_vertices(self, trixel_id: int) -> np.ndarray:
        """The (3, 3) unit-vector vertices of a trixel at any level."""
        level = self.level_of(trixel_id)
        path = []
        tid = int(trixel_id)
        for _ in range(level):
            path.append(tid & 3)
            tid >>= 2
        if not 8 <= tid <= 15:
            raise ValueError(f"invalid trixel id {trixel_id}")
        a, b, c = _ROOTS[tid - 8]
        for k in reversed(path):
            a, b, c = _children(a, b, c)[k]
        return np.stack([a, b, c])

    def trixel_center(self, trixel_id: int):
        """(ra, dec) of the trixel centroid."""
        verts = self.trixel_vertices(trixel_id)
        center = _normalized(verts.sum(axis=0))
        ra, dec = vector_to_radec(center)
        return float(np.asarray(ra)), float(np.asarray(dec))

    def trixel_area(self, trixel_id: int) -> float:
        """Solid angle of a trixel in square degrees (Girard's theorem)."""
        a, b, c = self.trixel_vertices(trixel_id)

        def angle(u, apex, w):
            # Angle at 'apex' between great-circle arcs apex->u and apex->w.
            t1 = _normalized(np.cross(np.cross(apex, u), apex))
            t2 = _normalized(np.cross(np.cross(apex, w), apex))
            return math.acos(float(np.clip(np.dot(t1, t2), -1.0, 1.0)))

        excess = angle(b, a, c) + angle(a, b, c) + angle(a, c, b) - math.pi
        return excess * (180.0 / math.pi) ** 2

    def _trixel_bounding_circle(self, verts) -> SphericalCircle:
        center = _normalized(verts.sum(axis=0))
        radius = float(np.max(angular_separation_vectors(center, verts)))
        ra, dec = vector_to_radec(center)
        return SphericalCircle(float(np.asarray(ra)), float(np.asarray(dec)), radius)

    # -- region coverage ----------------------------------------------------------

    def envelope(self, region: Region) -> np.ndarray:
        """Conservative set of level-``level`` trixel ids intersecting ``region``.

        Never omits a trixel that truly intersects; may include a few
        false positives near the region boundary (the safe direction for
        query dispatch).  Works by recursive descent, pruning subtrees
        whose bounding circles are disjoint from the region.
        """
        out: list[int] = []
        for k in range(8):
            a, b, c = _ROOTS[k]
            self._cover(region, 8 + k, a, b, c, 0, out)
        return np.array(sorted(out), dtype=np.int64)

    def _cover(self, region, tid, a, b, c, level, out):
        verts = np.stack([a, b, c])
        bc = self._trixel_bounding_circle(verts)
        rel = region.relate(bc)
        if rel is Relationship.DISJOINT:
            return
        if level == self.level:
            out.append(tid)
            return
        if rel is Relationship.CONTAINS:
            # Whole subtree is inside the region: emit all descendants.
            lo = tid * 4 ** (self.level - level)
            out.extend(range(lo, lo + 4 ** (self.level - level)))
            return
        for k, (ka, kb, kc) in enumerate(_children(a, b, c)):
            self._cover(region, tid * 4 + k, ka, kb, kc, level + 1, out)

    def __repr__(self):
        return f"HtmPixelization(level={self.level})"
