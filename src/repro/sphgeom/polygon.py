"""Convex spherical polygons.

Production Qserv accepts ``qserv_areaspec_poly`` restrictions alongside
boxes and circles; this region type backs that in the reproduction.  A
convex polygon on the sphere is the intersection of the half-spaces
bounded by its edges' great circles; membership is a handful of
vectorized sign tests, just like HTM trixels (a trixel *is* a 3-vertex
convex polygon).
"""

from __future__ import annotations

import math

import numpy as np

from .box import SphericalBox
from .circle import SphericalCircle
from .coords import angular_separation_vectors, unit_vector, vector_to_radec
from .region import Region, Relationship

__all__ = ["SphericalConvexPolygon"]

_EPS = 1.0e-12


class SphericalConvexPolygon(Region):
    """The convex hull of >= 3 vertices on the sphere.

    Vertices may be given in either winding order (they are re-oriented
    internally); they must form a convex polygon smaller than a
    hemisphere, or ValueError is raised.
    """

    def __init__(self, vertices):
        vertices = [(float(r), float(d)) for r, d in vertices]
        if len(vertices) < 3:
            raise ValueError(f"a polygon needs >= 3 vertices, got {len(vertices)}")
        self._radec = vertices
        self._verts = unit_vector(
            np.array([v[0] for v in vertices]), np.array([v[1] for v in vertices])
        )
        centroid = self._verts.sum(axis=0)
        norm = np.linalg.norm(centroid)
        if norm < _EPS:
            raise ValueError("degenerate polygon (vertices cancel out)")
        self._centroid = centroid / norm

        # Edge planes, oriented so the centroid is on the inside.
        n = len(vertices)
        planes = []
        for i in range(n):
            a, b = self._verts[i], self._verts[(i + 1) % n]
            plane = np.cross(a, b)
            if np.linalg.norm(plane) < _EPS:
                raise ValueError(f"degenerate edge between vertices {i} and {(i + 1) % n}")
            if float(plane @ self._centroid) < 0:
                plane = -plane
            planes.append(plane)
        self._planes = np.array(planes)

        # Convexity check: every vertex must satisfy every half-space.
        signs = self._verts @ self._planes.T
        if np.any(signs < -1e-9):
            raise ValueError("vertices do not form a convex polygon")

    # -- Region interface ----------------------------------------------------

    def contains(self, ra, dec):
        p = unit_vector(np.asarray(ra, dtype=np.float64), np.asarray(dec, dtype=np.float64))
        # (..., 3) @ (3, n_edges) -> (..., n_edges); inside = all >= 0.
        dots = p @ self._planes.T
        out = np.all(dots >= -_EPS, axis=-1)
        if out.ndim == 0:
            return bool(out)
        return out

    def bounding_circle(self) -> SphericalCircle:
        radius = float(np.max(angular_separation_vectors(self._centroid, self._verts)))
        ra, dec = vector_to_radec(self._centroid)
        return SphericalCircle(float(np.asarray(ra)), float(np.asarray(dec)), radius)

    def bounding_box(self) -> SphericalBox:
        return self.bounding_circle().bounding_box()

    def area(self) -> float:
        """Spherical excess (Girard): sum of interior angles - (n-2)*pi."""
        n = len(self._verts)
        total = 0.0
        for i in range(n):
            prev_v = self._verts[(i - 1) % n]
            apex = self._verts[i]
            next_v = self._verts[(i + 1) % n]
            t1 = np.cross(np.cross(apex, prev_v), apex)
            t2 = np.cross(np.cross(apex, next_v), apex)
            t1 = t1 / np.linalg.norm(t1)
            t2 = t2 / np.linalg.norm(t2)
            total += math.acos(float(np.clip(t1 @ t2, -1.0, 1.0)))
        excess = total - (n - 2) * math.pi
        return excess * (180.0 / math.pi) ** 2

    def relate(self, other: Region) -> Relationship:
        """Conservative: DISJOINT only when bounding circles prove it."""
        bc = self.bounding_circle()
        rel = bc.relate(other)
        if rel is Relationship.DISJOINT:
            return Relationship.DISJOINT
        # A cheap exact-ish CONTAINS: boxes whose corners and edge
        # midpoints all fall inside the polygon.
        if isinstance(other, SphericalBox) and not other.is_empty and not other.full_ra:
            ras = [other.ra_min, other.ra_min + other.ra_extent() / 2, other.ra_max]
            decs = [other.dec_min, (other.dec_min + other.dec_max) / 2, other.dec_max]
            if all(self.contains(r, d) for r in ras for d in decs):
                return Relationship.CONTAINS
        return Relationship.INTERSECTS

    @property
    def vertices(self) -> list[tuple[float, float]]:
        return list(self._radec)

    def __repr__(self):
        pts = ", ".join(f"({r:g}, {d:g})" for r, d in self._radec)
        return f"SphericalConvexPolygon([{pts}])"
