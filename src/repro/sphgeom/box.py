"""Longitude/latitude boxes on the sphere.

A :class:`SphericalBox` is the region behind the paper's
``qserv_areaspec_box(raMin, decMin, raMax, decMax)`` pseudo-function and
the shape of every chunk and sub-chunk produced by the stripes/sub-stripes
partitioner.  Boxes must handle the 360 -> 0 right-ascension wrap: a box
with ``ra_min=350, ra_max=10`` covers the 20-degree sliver spanning the
meridian, exactly like the PT1.1 data set footprint (RA 358..5 deg).
"""

from __future__ import annotations

import math

import numpy as np

from .coords import MAX_DEC, MIN_DEC, normalize_ra
from .region import Region, Relationship

__all__ = ["SphericalBox"]

_FULL_RA = 360.0


class SphericalBox(Region):
    """A box in (ra, dec), possibly wrapping in right ascension.

    Parameters
    ----------
    ra_min, ra_max:
        Right ascension bounds in degrees.  If ``ra_min > ra_max`` after
        normalization the box wraps through RA 0.  Passing a span of 360
        or more degrees produces a full-circle box.
    dec_min, dec_max:
        Declination bounds in degrees, clamped to [-90, +90].  A box with
        ``dec_min > dec_max`` is empty.
    """

    __slots__ = ("ra_min", "ra_max", "dec_min", "dec_max", "_full_ra", "_empty")

    def __init__(self, ra_min: float, dec_min: float, ra_max: float, dec_max: float):
        dec_min = max(float(dec_min), MIN_DEC)
        dec_max = min(float(dec_max), MAX_DEC)
        self._empty = dec_min > dec_max
        raw_span = float(ra_max) - float(ra_min)
        self._full_ra = raw_span >= _FULL_RA
        if self._full_ra:
            self.ra_min, self.ra_max = 0.0, _FULL_RA
        else:
            self.ra_min = normalize_ra(ra_min)
            self.ra_max = normalize_ra(ra_max)
        self.dec_min = dec_min
        self.dec_max = dec_max

    # -- constructors ------------------------------------------------------

    @classmethod
    def full_sky(cls) -> "SphericalBox":
        """The whole celestial sphere."""
        return cls(0.0, MIN_DEC, 360.0, MAX_DEC)

    @classmethod
    def empty(cls) -> "SphericalBox":
        """A box containing no points."""
        box = cls(0.0, 1.0, 0.0, -1.0)
        return box

    # -- basic properties ---------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return self._empty

    @property
    def wraps(self) -> bool:
        """True when the RA interval crosses the 360 -> 0 meridian."""
        return (not self._full_ra) and self.ra_min > self.ra_max

    @property
    def full_ra(self) -> bool:
        """True when the box spans the complete RA circle."""
        return self._full_ra

    def ra_extent(self) -> float:
        """Width of the RA interval in degrees."""
        if self._empty:
            return 0.0
        if self._full_ra:
            return _FULL_RA
        if self.wraps:
            return _FULL_RA - self.ra_min + self.ra_max
        return self.ra_max - self.ra_min

    def dec_extent(self) -> float:
        """Height of the declination interval in degrees."""
        if self._empty:
            return 0.0
        return self.dec_max - self.dec_min

    # -- Region interface ----------------------------------------------------

    def contains(self, ra, dec):
        """Vectorized membership test (inclusive bounds)."""
        ra = np.asarray(ra, dtype=np.float64)
        dec = np.asarray(dec, dtype=np.float64)
        if self._empty:
            out = np.zeros(np.broadcast(ra, dec).shape, dtype=bool)
            return bool(out) if out.ndim == 0 else out
        in_dec = (dec >= self.dec_min) & (dec <= self.dec_max)
        if self._full_ra:
            in_ra = np.ones_like(in_dec)
        else:
            ra_n = np.mod(ra, _FULL_RA)
            if self.wraps:
                in_ra = (ra_n >= self.ra_min) | (ra_n <= self.ra_max)
            else:
                in_ra = (ra_n >= self.ra_min) & (ra_n <= self.ra_max)
        out = in_dec & in_ra
        if out.ndim == 0:
            return bool(out)
        return out

    def bounding_box(self) -> "SphericalBox":
        return self

    def area(self) -> float:
        """Solid angle in square degrees: dRA * (sin decMax - sin decMin)."""
        if self._empty:
            return 0.0
        dra = math.radians(self.ra_extent())
        band = math.sin(math.radians(self.dec_max)) - math.sin(math.radians(self.dec_min))
        steradians = dra * band
        return steradians * (180.0 / math.pi) ** 2

    # -- interval helpers ----------------------------------------------------

    def _ra_intervals(self):
        """The RA interval as one or two non-wrapping [lo, hi] pairs."""
        if self._full_ra:
            return [(0.0, _FULL_RA)]
        if self.wraps:
            return [(self.ra_min, _FULL_RA), (0.0, self.ra_max)]
        return [(self.ra_min, self.ra_max)]

    def _ra_overlaps(self, other: "SphericalBox") -> bool:
        if self._full_ra or other._full_ra:
            return True
        for lo1, hi1 in self._ra_intervals():
            for lo2, hi2 in other._ra_intervals():
                if lo1 <= hi2 and lo2 <= hi1:
                    return True
        return False

    def _ra_contains_interval(self, other: "SphericalBox") -> bool:
        """True if this box's RA interval contains the other's entirely."""
        if self._full_ra:
            return True
        if other._full_ra:
            return False

        def contained(lo, hi):
            return any(lo >= lo1 and hi <= hi1 for lo1, hi1 in self._ra_intervals())

        # A wrapping 'other' may split into two pieces that are contained
        # by this box's (possibly also split) intervals.
        return all(contained(lo, hi) for lo, hi in other._ra_intervals())

    def relate(self, other: Region) -> Relationship:
        if not isinstance(other, SphericalBox):
            # Conservative fallback through the other region's bbox.
            other_box = other.bounding_box()
            rel = self.relate(other_box)
            if rel is Relationship.DISJOINT:
                return Relationship.DISJOINT
            if rel is Relationship.CONTAINS:
                return Relationship.CONTAINS
            return Relationship.INTERSECTS
        if self._empty or other._empty:
            return Relationship.DISJOINT
        dec_overlap = self.dec_min <= other.dec_max and other.dec_min <= self.dec_max
        if not dec_overlap or not self._ra_overlaps(other):
            return Relationship.DISJOINT
        self_contains = (
            self.dec_min <= other.dec_min
            and self.dec_max >= other.dec_max
            and self._ra_contains_interval(other)
        )
        if self_contains:
            return Relationship.CONTAINS
        other_contains = (
            other.dec_min <= self.dec_min
            and other.dec_max >= self.dec_max
            and other._ra_contains_interval(self)
        )
        if other_contains:
            return Relationship.WITHIN
        return Relationship.INTERSECTS

    # -- dilation (overlap support) -------------------------------------------

    def dilated(self, radius: float) -> "SphericalBox":
        """Expand the box by ``radius`` degrees in every direction.

        This is how overlap regions are computed (section 4.4): a chunk's
        overlap rows are the points inside ``chunk_box.dilated(overlap)``
        but outside ``chunk_box`` itself.  The RA expansion is scaled by
        ``1/cos(dec)`` at the box's highest-|dec| edge so the guarantee
        "every point within ``radius`` of the box is inside the dilated
        box" holds on the sphere, not just on the (ra, dec) plane.
        """
        if radius < 0:
            raise ValueError(f"dilation radius must be non-negative, got {radius}")
        if self._empty or radius == 0.0:
            return self
        dec_min = max(self.dec_min - radius, MIN_DEC)
        dec_max = min(self.dec_max + radius, MAX_DEC)
        # Worst-case metric scaling for the RA direction across the
        # dilated dec range.  At the poles the scale diverges: fall back
        # to a full RA circle.
        max_abs_dec = min(max(abs(dec_min), abs(dec_max)), 89.9999)
        cos_term = math.cos(math.radians(max_abs_dec))
        if cos_term <= 0.0:
            return SphericalBox(0.0, dec_min, 360.0, dec_max)
        ra_pad = radius / cos_term
        if self._full_ra or self.ra_extent() + 2.0 * ra_pad >= _FULL_RA:
            return SphericalBox(0.0, dec_min, 360.0, dec_max)
        # Preserve wrap structure by working with raw endpoints.
        ra_min = self.ra_min - ra_pad
        ra_max = (self.ra_max if not self.wraps else self.ra_max + _FULL_RA) + ra_pad
        return SphericalBox(ra_min, dec_min, ra_max, dec_max)

    # -- dunder ----------------------------------------------------------------

    def __eq__(self, other):
        if not isinstance(other, SphericalBox):
            return NotImplemented
        if self._empty and other._empty:
            return True
        return (
            self.ra_min == other.ra_min
            and self.ra_max == other.ra_max
            and self.dec_min == other.dec_min
            and self.dec_max == other.dec_max
            and self._full_ra == other._full_ra
        )

    def __hash__(self):
        if self._empty:
            return hash("empty-box")
        return hash((self.ra_min, self.ra_max, self.dec_min, self.dec_max, self._full_ra))

    def __repr__(self):
        if self._empty:
            return "SphericalBox.empty()"
        return (
            f"SphericalBox(ra=[{self.ra_min:g}, {self.ra_max:g}], "
            f"dec=[{self.dec_min:g}, {self.dec_max:g}]"
            f"{', wraps' if self.wraps else ''})"
        )
