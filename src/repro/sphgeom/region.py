"""The spherical region interface.

Regions answer two questions for the rest of the system:

1. point membership -- vectorized ``contains(ra, dec)`` used by the SQL
   UDFs (``qserv_ptInSphericalBox`` and friends) that worker queries are
   rewritten to call, and
2. region/region relationships -- used by the partitioner and the czar
   to turn an ``qserv_areaspec_*`` restriction into the set of chunks a
   query must be dispatched to.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod

__all__ = ["Relationship", "Region"]


class Relationship(enum.Enum):
    """Coarse spatial relationship between two regions.

    The partitioner only needs a conservative answer: ``DISJOINT`` must
    never be reported for regions that actually intersect (that would
    silently drop chunks from a query), whereas reporting ``INTERSECTS``
    for a borderline-disjoint pair merely dispatches a chunk query that
    returns zero rows.
    """

    DISJOINT = 0
    INTERSECTS = 1
    CONTAINS = 2  # self contains other entirely
    WITHIN = 3  # self lies entirely within other


class Region(ABC):
    """Abstract region on the unit sphere."""

    @abstractmethod
    def contains(self, ra, dec):
        """Vectorized point membership; returns bool array (or scalar bool)."""

    @abstractmethod
    def relate(self, other: "Region") -> Relationship:
        """Conservative relationship between this region and ``other``."""

    @abstractmethod
    def bounding_box(self) -> "Region":
        """A :class:`repro.sphgeom.box.SphericalBox` covering this region."""

    @abstractmethod
    def area(self) -> float:
        """Solid angle of the region in square degrees."""

    def intersects(self, other: "Region") -> bool:
        """True unless the regions are provably disjoint."""
        return self.relate(other) is not Relationship.DISJOINT
