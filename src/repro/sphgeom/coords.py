"""Angle handling and angular-separation kernels.

All public functions are vectorized over NumPy arrays and accept plain
Python scalars; angles are in degrees unless a name says otherwise.  The
separation kernel is the single hottest primitive in the system -- every
near-neighbor join predicate (``qserv_angSep``) reduces to it -- so it
is written to avoid temporaries where practical and to stay numerically
stable for very small separations (the haversine form, not the naive
``arccos`` dot product, which loses all precision below ~1e-4 rad).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "normalize_ra",
    "normalize_dec",
    "unit_vector",
    "vector_to_radec",
    "angular_separation",
    "angular_separation_vectors",
    "MAX_DEC",
    "MIN_DEC",
]

MIN_DEC = -90.0
MAX_DEC = 90.0


def normalize_ra(ra):
    """Map right ascension(s) into ``[0, 360)`` degrees.

    Works for scalars and arrays; ``360.0`` maps to ``0.0``.
    """
    ra = np.asarray(ra, dtype=np.float64)
    out = np.mod(ra, 360.0)
    # np.mod of a tiny negative value rounds to exactly 360.0; fold it
    # back so the result is always strictly below 360 (and -0.0 -> 0.0).
    out = np.where(out >= 360.0, 0.0, out) + 0.0
    if out.ndim == 0:
        return float(out)
    return out


def normalize_dec(dec):
    """Clamp declination(s) into ``[-90, +90]`` degrees."""
    dec = np.asarray(dec, dtype=np.float64)
    out = np.clip(dec, MIN_DEC, MAX_DEC)
    if out.ndim == 0:
        return float(out)
    return out


def unit_vector(ra, dec):
    """Convert (ra, dec) in degrees to unit 3-vectors.

    Returns an array of shape ``(..., 3)``; scalar inputs give shape
    ``(3,)``.
    """
    ra_r = np.deg2rad(np.asarray(ra, dtype=np.float64))
    dec_r = np.deg2rad(np.asarray(dec, dtype=np.float64))
    cos_dec = np.cos(dec_r)
    return np.stack(
        [cos_dec * np.cos(ra_r), cos_dec * np.sin(ra_r), np.sin(dec_r)],
        axis=-1,
    )


def vector_to_radec(v):
    """Convert unit 3-vectors of shape ``(..., 3)`` back to (ra, dec) degrees.

    The returned right ascension is normalized into ``[0, 360)``.
    """
    v = np.asarray(v, dtype=np.float64)
    x, y, z = v[..., 0], v[..., 1], v[..., 2]
    ra = np.rad2deg(np.arctan2(y, x))
    norm = np.sqrt(x * x + y * y + z * z)
    # Guard the poles: arcsin argument must stay in [-1, 1].
    dec = np.rad2deg(np.arcsin(np.clip(z / norm, -1.0, 1.0)))
    return normalize_ra(ra), dec if dec.ndim else float(dec)


def angular_separation(ra1, dec1, ra2, dec2):
    """Great-circle separation between points, in degrees.

    Uses the haversine formula for numerical stability at small
    separations.  All four arguments broadcast against each other, so a
    single probe point can be compared against a whole column in one
    call.  This is the implementation behind the ``qserv_angSep`` SQL
    UDF.
    """
    ra1 = np.deg2rad(np.asarray(ra1, dtype=np.float64))
    dec1 = np.deg2rad(np.asarray(dec1, dtype=np.float64))
    ra2 = np.deg2rad(np.asarray(ra2, dtype=np.float64))
    dec2 = np.deg2rad(np.asarray(dec2, dtype=np.float64))

    sin_ddec = np.sin((dec2 - dec1) * 0.5)
    sin_dra = np.sin((ra2 - ra1) * 0.5)
    h = sin_ddec * sin_ddec + np.cos(dec1) * np.cos(dec2) * sin_dra * sin_dra
    sep = 2.0 * np.arcsin(np.sqrt(np.clip(h, 0.0, 1.0)))
    out = np.rad2deg(sep)
    if out.ndim == 0:
        return float(out)
    return out


def angular_separation_vectors(v1, v2):
    """Separation in degrees between unit vectors of shape ``(..., 3)``.

    Stable form based on ``atan2(|v1 x v2|, v1 . v2)``; useful when unit
    vectors are already in hand (e.g. HTM trixel tests).
    """
    v1 = np.asarray(v1, dtype=np.float64)
    v2 = np.asarray(v2, dtype=np.float64)
    cross = np.cross(v1, v2)
    cross_norm = np.sqrt(np.sum(cross * cross, axis=-1))
    dot = np.sum(v1 * v2, axis=-1)
    out = np.rad2deg(np.arctan2(cross_norm, dot))
    if out.ndim == 0:
        return float(out)
    return out
