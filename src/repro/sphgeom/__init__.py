"""Spherical geometry primitives for astronomical catalogs.

This subpackage is the substrate that every other layer of the Qserv
reproduction builds on.  Positions on the celestial sphere are expressed
as (right ascension, declination) pairs in **degrees**: right ascension
(``ra``, the azimuthal angle, called phi in the paper) lies in
``[0, 360)`` and declination (``dec``, the polar angle measured from the
equator, called theta in the paper) lies in ``[-90, +90]``.

Contents
--------
- :mod:`repro.sphgeom.coords` -- angle normalization, unit vectors and
  the angular-separation kernels used by spatial joins.
- :mod:`repro.sphgeom.region` -- the :class:`Region` interface and the
  containment/intersection relationships.
- :mod:`repro.sphgeom.box` -- longitude/latitude boxes with RA
  wrap-around, the region type behind ``qserv_areaspec_box``.
- :mod:`repro.sphgeom.circle` -- small circles (cone searches).
- :mod:`repro.sphgeom.htm` -- the Hierarchical Triangular Mesh indexing
  scheme discussed as alternate partitioning in section 7.5 of the paper.
"""

from .coords import (
    angular_separation,
    normalize_dec,
    normalize_ra,
    unit_vector,
    vector_to_radec,
)
from .region import Region, Relationship
from .box import SphericalBox
from .circle import SphericalCircle
from .polygon import SphericalConvexPolygon
from .htm import HtmPixelization

__all__ = [
    "angular_separation",
    "normalize_dec",
    "normalize_ra",
    "unit_vector",
    "vector_to_radec",
    "Region",
    "Relationship",
    "SphericalBox",
    "SphericalCircle",
    "SphericalConvexPolygon",
    "HtmPixelization",
]
