"""Small circles (cone searches) on the sphere.

A :class:`SphericalCircle` backs the ``qserv_areaspec_circle`` restriction
and is also used internally to bound HTM trixels when relating them to
query regions.
"""

from __future__ import annotations

import math

import numpy as np

from .coords import angular_separation, normalize_ra
from .box import SphericalBox
from .region import Region, Relationship

__all__ = ["SphericalCircle"]


class SphericalCircle(Region):
    """All points within ``radius`` degrees of ``(ra, dec)``.

    A radius of 0 is a single point; a radius of 180 is the full sphere.
    """

    __slots__ = ("ra", "dec", "radius")

    def __init__(self, ra: float, dec: float, radius: float):
        if radius < 0:
            raise ValueError(f"circle radius must be non-negative, got {radius}")
        self.ra = normalize_ra(float(ra))
        self.dec = float(dec)
        self.radius = float(min(radius, 180.0))

    def contains(self, ra, dec):
        sep = angular_separation(self.ra, self.dec, ra, dec)
        out = np.asarray(sep) <= self.radius
        if out.ndim == 0:
            return bool(out)
        return out

    def bounding_box(self) -> SphericalBox:
        """Tight lon/lat box around the circle.

        The RA half-width of a circle grows as it nears a pole; when the
        circle contains a pole the box must span the full RA circle.
        """
        dec_min = self.dec - self.radius
        dec_max = self.dec + self.radius
        if dec_min <= -90.0 or dec_max >= 90.0:
            return SphericalBox(0.0, dec_min, 360.0, dec_max)
        # Half-width in RA: sin(w) = sin(r) / cos(dec)  (standard cone bbox).
        sin_r = math.sin(math.radians(self.radius))
        cos_dec = math.cos(math.radians(self.dec))
        if sin_r >= cos_dec:
            return SphericalBox(0.0, dec_min, 360.0, dec_max)
        w = math.degrees(math.asin(sin_r / cos_dec))
        return SphericalBox(self.ra - w, dec_min, self.ra + w, dec_max)

    def area(self) -> float:
        """Spherical cap area, 2*pi*(1 - cos r), in square degrees."""
        steradians = 2.0 * math.pi * (1.0 - math.cos(math.radians(self.radius)))
        return steradians * (180.0 / math.pi) ** 2

    def dilated(self, radius: float) -> "SphericalCircle":
        """The circle grown by ``radius`` degrees (overlap support).

        Every point within ``radius`` of the original circle lies inside
        the dilated circle -- the same guarantee SphericalBox.dilated
        provides, used when circles bound HTM partitions.
        """
        if radius < 0:
            raise ValueError(f"dilation radius must be non-negative, got {radius}")
        return SphericalCircle(self.ra, self.dec, self.radius + radius)

    def relate(self, other: Region) -> Relationship:
        if isinstance(other, SphericalCircle):
            sep = angular_separation(self.ra, self.dec, other.ra, other.dec)
            if sep > self.radius + other.radius:
                return Relationship.DISJOINT
            if sep + other.radius <= self.radius:
                return Relationship.CONTAINS
            if sep + self.radius <= other.radius:
                return Relationship.WITHIN
            return Relationship.INTERSECTS
        # Box (or anything else): be conservative via bounding boxes. A
        # circle's bbox test can only over-report intersection, never
        # under-report it, which is the safe direction for chunk selection.
        rel = self.bounding_box().relate(other.bounding_box())
        if rel is Relationship.DISJOINT:
            return Relationship.DISJOINT
        if isinstance(other, SphericalBox) and not other.is_empty:
            # Exact containment check: the circle contains the box iff it
            # contains all four corners and the box's extreme-dec edges.
            corners_ra = [other.ra_min, other.ra_max]
            corners_dec = [other.dec_min, other.dec_max]
            pts = [(r, d) for r in corners_ra for d in corners_dec]
            if all(self.contains(r, d) for r, d in pts) and not other.full_ra:
                # Also check edge midpoints (dec edges bow toward poles).
                mid_ra = other.ra_min + other.ra_extent() / 2.0
                if self.contains(mid_ra, other.dec_min) and self.contains(
                    mid_ra, other.dec_max
                ):
                    return Relationship.CONTAINS
        return Relationship.INTERSECTS

    def __eq__(self, other):
        if not isinstance(other, SphericalCircle):
            return NotImplemented
        return (
            self.ra == other.ra
            and self.dec == other.dec
            and self.radius == other.radius
        )

    def __hash__(self):
        return hash((self.ra, self.dec, self.radius))

    def __repr__(self):
        return f"SphericalCircle(ra={self.ra:g}, dec={self.dec:g}, radius={self.radius:g})"
