"""Deterministic interleaving explorer: a cooperative PCT-style scheduler.

A happens-before detector (:mod:`repro.analysis.races`) flags races it
can *see*, but which accesses overlap depends on the interleaving the
OS happened to produce.  This module removes the OS from the equation:
while a :class:`Scheduler` is active, every thread started inside it is
*managed* -- exactly one managed thread runs at a time, and the running
thread hands the token over only at controlled yield points:

- every tracked attribute/container access (the race detector calls
  :meth:`Scheduler.yield_point` before recording),
- every sanitized lock acquire (``make_lock``/``make_rlock`` wrappers
  go through a cooperative try-acquire loop instead of blocking),
- ``Thread.start`` and explicit ``yield_point()`` calls in scenarios.

Schedules are driven by seeded random priorities with a few demotion
points (the PCT algorithm's shape): same seed => same decision sequence
=> same interleaving, recorded in :attr:`Scheduler.trace` so tests can
assert determinism, and :func:`sweep` replays a scenario across a seed
range to *find* the interleaving that breaks an invariant.

Blocking primitives are made cooperative rather than forbidden:

- sanitized locks spin through ``yield_point``/try-acquire and park the
  thread on the scheduler when contended (woken by the instrumented
  release);
- ``make_condition`` returns a :class:`CooperativeCondition` while a
  scheduler is active: waiters park on the scheduler, ``notify`` marks
  them runnable, and a ``wait(timeout=...)`` is timed *logically* --
  fired deterministically only when nothing else can run (production
  waits are predicate loops, so a logically-early timeout is just a
  spurious wakeup).

If no managed thread can run and no timed wait remains, the scheduler
declares :class:`SchedulerStall`, releases every parked thread into
free-running mode (so nothing leaks), and raises with a per-thread
diagnostic.  A wall-clock timeout and a step budget backstop scenario
bugs.  Construct the objects under test *inside* the scheduler context:
conditions created before it are real stdlib conditions, and a managed
thread blocking in one would hold the token forever.
"""

from __future__ import annotations

import random
import threading
from typing import Callable, Iterable, Optional

from . import races as _races
from . import sanitizer as _sanitizer

__all__ = [
    "Scheduler",
    "SchedulerStall",
    "CooperativeCondition",
    "sweep",
]

_RUNNABLE = "runnable"
_RUNNING = "running"
_BLOCKED_LOCK = "blocked-on-lock"
_BLOCKED_CV = "blocked-on-cv"
_FINISHED = "finished"


class SchedulerStall(RuntimeError):
    """No managed thread can make progress under the current schedule."""


class _TState:
    __slots__ = (
        "thread", "name", "index", "priority", "event", "status",
        "blocked_on", "timeout", "timed_out", "error", "spawned",
    )

    def __init__(self, thread: threading.Thread, index: int,
                 priority: float, spawned: bool):
        self.thread = thread
        self.name = thread.name
        self.index = index
        self.priority = priority
        self.event = threading.Event()
        self.status = _RUNNABLE
        self.blocked_on = None
        self.timeout: Optional[float] = None
        self.timed_out = False
        self.error: Optional[BaseException] = None
        self.spawned = spawned


class Scheduler:
    """Serializes managed threads onto one seeded, replayable schedule."""

    def __init__(self, seed: int = 0, change_points: int = 3,
                 horizon: int = 64, max_steps: int = 20000,
                 wall_timeout: float = 30.0):
        self.seed = seed
        self._rng = random.Random(seed)
        self._mu = threading.Lock()  # plain leaf lock, never sanitized
        self._states: dict[threading.Thread, _TState] = {}
        self._order: list[_TState] = []
        self._spawned: list[_TState] = []
        self.trace: list[str] = []
        self._step = 0
        self._max_steps = max_steps
        self._wall_timeout = wall_timeout
        if change_points > 0:
            # PCT-style demotion points, sampled inside the expected
            # schedule length (``horizon`` steps) -- sampling over the
            # whole step budget would land them past short scenarios
            # and degenerate into pure priority runs.
            window = max(horizon, change_points + 1)
            self._change_steps = sorted(
                self._rng.sample(range(1, window), min(change_points, window - 1))
            )
        else:
            self._change_steps = []
        self._change_idx = 0
        self._free_run = False
        self._done = threading.Event()
        self._stall: Optional[str] = None
        self._active = False
        self._orig_start = None

    # -- activation --------------------------------------------------------------

    def __enter__(self) -> "Scheduler":
        self._active = True
        _sanitizer._SCHEDULER = self
        _races._SCHEDULER = self
        self._orig_start = threading.Thread.start
        scheduler = self

        def start(thread):
            if scheduler._active and not scheduler._free_run:
                scheduler._adopt(thread)
            scheduler._orig_start(thread)
            me = scheduler._states.get(threading.current_thread())
            if me is not None and not scheduler._free_run:
                scheduler.yield_point()

        threading.Thread.start = start
        return self

    def __exit__(self, *exc):
        self._active = False
        if self._orig_start is not None:
            threading.Thread.start = self._orig_start
        _sanitizer._SCHEDULER = None
        _races._SCHEDULER = None
        # Release anything still parked so no thread leaks.
        with self._mu:
            self._free_run = True
            for st in self._order:
                st.event.set()
            self._done.set()
        return False

    # -- registration ------------------------------------------------------------

    def _register(self, thread: threading.Thread, spawned: bool) -> _TState:
        with self._mu:
            existing = self._states.get(thread)
            if existing is not None:
                return existing
            state = _TState(thread, len(self._order), self._rng.random(), spawned)
            self._states[thread] = state
            self._order.append(state)
            if spawned:
                self._spawned.append(state)
        orig_run = thread.run
        scheduler = self

        def run():
            state.event.wait()
            error = None
            try:
                orig_run()
            except BaseException as e:  # noqa: BLE001 -- reported via run()
                error = e
            finally:
                scheduler._thread_finished(state, error)

        thread.run = run
        return state

    def spawn(self, fn: Callable, *args, name: Optional[str] = None,
              **kwargs) -> threading.Thread:
        """Declare a scenario thread; started (in order) by :meth:`run`."""
        thread = threading.Thread(
            target=fn, args=args, kwargs=kwargs,
            name=name or f"sched-{len(self._spawned)}", daemon=True,
        )
        self._register(thread, spawned=True)
        return thread

    def _adopt(self, thread: threading.Thread) -> None:
        """A thread started while the scheduler is active becomes managed."""
        self._register(thread, spawned=False)

    # -- the schedule ------------------------------------------------------------

    def _pick_locked(self) -> Optional[_TState]:
        runnable = [st for st in self._order if st.status == _RUNNABLE]
        if not runnable:
            return None
        return max(runnable, key=lambda st: (st.priority, -st.index))

    def _grant_locked(self, state: _TState) -> None:
        state.status = _RUNNING
        state.event.set()

    def _maybe_change_locked(self, state: Optional[_TState]) -> None:
        while (
            self._change_idx < len(self._change_steps)
            and self._step >= self._change_steps[self._change_idx]
        ):
            self._change_idx += 1
            if state is not None:
                state.priority = -float(self._change_idx)

    def _finish_locked(self) -> None:
        self._free_run = True
        for st in self._order:
            st.event.set()
        self._done.set()

    def _abandon_locked(self, why: str) -> None:
        lines = [why]
        for st in self._order:
            lines.append(
                f"  {st.name}: {st.status}"
                + (f" (on {st.blocked_on})" if st.blocked_on is not None else "")
            )
        self._stall = "\n".join(lines)
        self._finish_locked()

    def _schedule_next_locked(self) -> None:
        """The current thread gave up the token: pick who runs next."""
        nxt = self._pick_locked()
        if nxt is not None:
            self.trace.append(nxt.name)
            self._grant_locked(nxt)
            return
        if self._spawned and all(st.status == _FINISHED for st in self._spawned):
            self._finish_locked()
            return
        waiters = [
            st for st in self._order
            if st.status == _BLOCKED_CV and st.timeout is not None
        ]
        if waiters:
            st = min(waiters, key=lambda s: (s.timeout, s.index))
            st.timed_out = True
            st.status = _RUNNABLE
            self.trace.append(st.name + ":timeout")
            self._grant_locked(st)
            return
        self._abandon_locked("deadlock: no runnable threads and no timed waits")

    def _thread_finished(self, state: _TState,
                         error: Optional[BaseException] = None) -> None:
        if self._free_run or not self._active:
            with self._mu:
                state.error = error
                state.status = _FINISHED
            return
        with self._mu:
            state.error = error
            state.status = _FINISHED
            if self._spawned and all(
                st.status == _FINISHED for st in self._spawned
            ):
                self._finish_locked()
                return
            self._schedule_next_locked()

    # -- yield points (called from instrumented code) ------------------------------

    def yield_point(self) -> None:
        """Maybe hand the token to another runnable thread (seeded choice)."""
        if not self._active or self._free_run:
            return
        me = self._states.get(threading.current_thread())
        if me is None or me.status == _FINISHED:
            return
        with self._mu:
            if self._free_run:
                return
            self._step += 1
            if self._step >= self._max_steps:
                self._abandon_locked(f"exceeded max_steps={self._max_steps}")
                return
            self._maybe_change_locked(me)
            me.status = _RUNNABLE
            nxt = self._pick_locked()
            if nxt is me or nxt is None:
                me.status = _RUNNING
                return
            self.trace.append(nxt.name)
            me.event.clear()
            self._grant_locked(nxt)
        me.event.wait()

    def manages_current(self) -> bool:
        return (
            self._active
            and not self._free_run
            and threading.current_thread() in self._states
        )

    def block_on_lock(self, lock) -> bool:
        """Park until the lock's release; False => fall back to real blocking."""
        if not self._active or self._free_run:
            return False
        me = self._states.get(threading.current_thread())
        if me is None:
            return False
        with self._mu:
            if self._free_run:
                return False
            me.status = _BLOCKED_LOCK
            me.blocked_on = lock
            me.event.clear()
            self._schedule_next_locked()
        me.event.wait()
        return not self._free_run

    def lock_released(self, lock) -> None:
        """Instrumented release: contenders parked on this lock can retry."""
        if not self._active or self._free_run:
            return
        with self._mu:
            for st in self._order:
                if st.status == _BLOCKED_LOCK and st.blocked_on is lock:
                    st.status = _RUNNABLE
                    st.blocked_on = None

    def block_on_cv(self, state: _TState, timeout: Optional[float]) -> None:
        """Park the current (managed) thread as a condition waiter."""
        with self._mu:
            state.status = _BLOCKED_CV
            state.timeout = timeout
            state.timed_out = False
            state.event.clear()
            self._schedule_next_locked()
        state.event.wait()
        with self._mu:
            state.timeout = None

    def cv_notified(self, state: _TState) -> None:
        with self._mu:
            if state.status == _BLOCKED_CV:
                state.status = _RUNNABLE

    # -- driving -----------------------------------------------------------------

    def run(self) -> None:
        """Start every spawned thread and drive the schedule to completion."""
        for st in list(self._spawned):
            if not st.thread.is_alive() and st.status != _FINISHED:
                st.thread.start()
        with self._mu:
            if not self._free_run:
                self._schedule_next_locked()
        if not self._done.wait(self._wall_timeout):
            with self._mu:
                self._abandon_locked(
                    f"wall-clock timeout after {self._wall_timeout}s"
                )
        for st in self._spawned:
            st.thread.join(5.0)
        if self._stall is not None:
            raise SchedulerStall(self._stall)
        for st in self._spawned:
            if st.error is not None:
                raise st.error


def _current() -> Optional[Scheduler]:
    """The active scheduler, if any (read by the sanitizer's factories)."""
    s = _sanitizer._SCHEDULER
    return s if isinstance(s, Scheduler) else None


class _Waiter:
    __slots__ = ("notified", "state", "real_event")

    def __init__(self, state: Optional[_TState]):
        self.notified = False
        self.state = state
        self.real_event = threading.Event()


class CooperativeCondition:
    """A condition variable whose waits park on the active scheduler.

    Returned by ``make_condition`` while a :class:`Scheduler` is active.
    Managed waiters hand the token back instead of blocking; unmanaged
    threads (or free-running ones after a stall) fall back to a real
    event wait, so the object keeps working after the scheduler exits.
    """

    def __init__(self, lock, name: str = "condition"):
        self.name = name
        self._lock = lock
        self._waiters: list[_Waiter] = []

    # -- lock protocol ----------------------------------------------------------

    def acquire(self, *args, **kwargs):
        return self._lock.acquire(*args, **kwargs)

    def release(self):
        self._lock.release()

    def __enter__(self):
        self._lock.acquire()
        return self

    def __exit__(self, *exc):
        self._lock.release()
        return False

    def _depth(self) -> int:
        getter = getattr(self._lock, "_depth_get", None)
        return getter() if getter is not None else 1

    # -- waiting ----------------------------------------------------------------

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Release the lock, park until notify/timeout, reacquire."""
        scheduler = _current()
        state = None
        if scheduler is not None and scheduler.manages_current():
            state = scheduler._states.get(threading.current_thread())
        waiter = _Waiter(state)
        self._waiters.append(waiter)
        depth = self._depth()
        for _ in range(depth):
            self._lock.release()
        try:
            if state is not None:
                scheduler.block_on_cv(state, timeout)
                timed_out = state.timed_out and not waiter.notified
                state.timed_out = False
            else:
                notified = waiter.real_event.wait(timeout)
                timed_out = not notified
        finally:
            for _ in range(depth):
                self._lock.acquire()
            if waiter in self._waiters:
                self._waiters.remove(waiter)
        return not timed_out

    def wait_for(self, predicate, timeout: Optional[float] = None):
        result = predicate()
        while not result:
            if not self.wait(timeout):
                return predicate()
            result = predicate()
        return result

    def notify(self, n: int = 1) -> None:
        scheduler = _current()
        woken = 0
        for waiter in self._waiters:
            if waiter.notified:
                continue
            waiter.notified = True
            if waiter.state is not None and scheduler is not None:
                scheduler.cv_notified(waiter.state)
            waiter.real_event.set()
            woken += 1
            if woken >= n:
                break

    def notify_all(self) -> None:
        self.notify(len(self._waiters))

    def __repr__(self):
        return f"CooperativeCondition({self.name!r})"


def sweep(scenario: Callable[[Scheduler], None],
          seeds: Iterable[int] = range(100),
          catch: tuple = (Exception,),
          **scheduler_kwargs) -> dict[int, BaseException]:
    """Replay ``scenario`` across seeds; map each failing seed to its error.

    ``scenario`` receives an *entered* scheduler: it should construct
    its objects, ``spawn`` its threads, call ``run()``, and assert its
    invariants.  Any exception in ``catch`` (scheduler stalls included)
    is recorded instead of propagated, so a 100-seed sweep reports every
    interleaving that broke something.
    """
    failures: dict[int, BaseException] = {}
    for seed in seeds:
        try:
            with Scheduler(seed=seed, **scheduler_kwargs) as scheduler:
                scenario(scheduler)
        except catch as e:  # noqa: BLE001 -- the point is to collect them
            failures[seed] = e
    return failures
