"""Shared AST helpers for the concurrency rules.

The guarded-by and lock-order rules both need the same three pieces of
structure: which attributes of a class are locks (created with
``threading.Lock()`` or the sanitizer factories), which lock names a
``with self._lock:`` block holds (including condition-variable aliases:
``make_condition(self._lock)`` acquires ``_lock``), and which
expressions *mutate* state (assignments, ``del``, and calls to the
usual mutating container methods).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "LOCK_FACTORIES",
    "CONDITION_FACTORIES",
    "MUTATOR_METHODS",
    "ClassLocks",
    "Mutation",
    "lock_attrs_of_class",
    "target_path",
    "collect_mutations",
    "iter_classes_with_locks",
    "iter_own_functions",
]

#: Call names that construct a mutex (stdlib and sanitizer factories).
LOCK_FACTORIES = {"Lock", "RLock", "make_lock", "make_rlock"}
#: Call names that construct a condition variable over a lock.
CONDITION_FACTORIES = {"Condition", "make_condition"}
#: Method names that mutate their receiver in place.
MUTATOR_METHODS = {
    "append", "appendleft", "extend", "insert",
    "add", "discard", "remove",
    "pop", "popleft", "popitem", "clear",
    "update", "setdefault", "move_to_end",
}


def _call_name(call: ast.Call) -> Optional[str]:
    """Trailing name of the callee: ``threading.RLock`` -> ``"RLock"``."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.NAME`` -> ``"NAME"``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


@dataclass
class ClassLocks:
    """Lock-owning structure of one class."""

    #: Attribute names that are locks (mutexes or condition variables).
    locks: set[str] = field(default_factory=set)
    #: Acquiring KEY also holds every name in the alias closure --
    #: ``_queue_cv = make_condition(self._lock)`` maps ``_queue_cv`` to
    #: ``{"_queue_cv", "_lock"}``.
    aliases: dict[str, set[str]] = field(default_factory=dict)
    #: The subset of :attr:`locks` that are condition variables (their
    #: ``.wait`` / ``.wait_for`` calls are legitimate blocking points).
    conditions: set[str] = field(default_factory=set)

    def held_by(self, attr: str) -> set[str]:
        return self.aliases.get(attr, {attr})

    def canonical(self, attr: str) -> str:
        """The underlying mutex for a condition attr (itself otherwise)."""
        others = self.aliases.get(attr, {attr}) - {attr}
        return min(others) if others else attr


def lock_attrs_of_class(cls: ast.ClassDef) -> ClassLocks:
    """Find ``self.X = Lock()/RLock()/Condition(...)`` attributes."""
    out = ClassLocks()
    pending_conditions: list[tuple[str, Optional[str]]] = []
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        name = _call_name(node.value)
        for target in node.targets:
            attr = _self_attr(target)
            if attr is None:
                continue
            if name in LOCK_FACTORIES:
                out.locks.add(attr)
                out.aliases.setdefault(attr, {attr})
            elif name in CONDITION_FACTORIES:
                wrapped = None
                if node.value.args:
                    wrapped = _self_attr(node.value.args[0])
                pending_conditions.append((attr, wrapped))
    for attr, wrapped in pending_conditions:
        closure = {attr}
        if wrapped is not None and wrapped in out.locks:
            closure |= out.held_by(wrapped)
        out.locks.add(attr)
        out.conditions.add(attr)
        out.aliases[attr] = closure
    return out


def target_path(node: ast.AST) -> Optional[tuple[str, tuple[str, ...]]]:
    """Resolve a mutated expression to ``(root_name, attr_path)``.

    Subscripts are transparent (``self._cache[k]`` mutates
    ``self._cache``).  Returns None for targets that are not rooted in
    a plain name (e.g. ``foo().x``) or that have no attribute at all
    (bare locals are thread-confined by construction).
    """
    parts: list[str] = []
    cur = node
    while True:
        if isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        elif isinstance(cur, ast.Subscript):
            cur = cur.value
        elif isinstance(cur, ast.Name):
            root = cur.id
            break
        else:
            return None
    if not parts:
        return None
    parts.reverse()
    return root, tuple(parts)


@dataclass(frozen=True)
class Mutation:
    """One state mutation and the lock names held around it."""

    root: str
    path: tuple[str, ...]
    held: frozenset[str]
    node: ast.AST
    function: str

    @property
    def dotted(self) -> str:
        return ".".join((self.root, *self.path))


class _MutationVisitor(ast.NodeVisitor):
    """Walk one function body tracking ``with self.<lock>:`` nesting.

    Nested function definitions run *later*, not under the enclosing
    ``with`` -- their bodies are visited with an empty held set (they
    are still attributed to the class, closures mutate shared state).
    """

    def __init__(self, locks: ClassLocks, function: str, armed: bool = True):
        self.locks = locks
        self.function = function
        self.held: list[str] = []
        self.mutations: list[Mutation] = []
        #: (acquired_attr, previously_held_attrs, node) acquisition events.
        self.acquisitions: list[tuple[str, tuple[str, ...], ast.AST]] = []
        #: ``__init__`` bodies start disarmed: construction is
        #: single-threaded *until* a worker thread is started, so only
        #: the writes lexically after the first ``.start()`` call count.
        self.armed = armed

    def _record(self, target: ast.AST, node: ast.AST) -> None:
        if not self.armed:
            return
        resolved = target_path(target)
        if resolved is None:
            return
        root, path = resolved
        if root == "self" and path and path[0] in self.locks.locks:
            return  # the locks themselves are not guarded data
        held: set[str] = set()
        for attr in self.held:
            held |= self.locks.held_by(attr)
        self.mutations.append(
            Mutation(root, path, frozenset(held), node, self.function)
        )

    # -- mutations ---------------------------------------------------------------

    @staticmethod
    def _flatten_targets(target: ast.AST):
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from _MutationVisitor._flatten_targets(element)
        elif isinstance(target, ast.Starred):
            yield from _MutationVisitor._flatten_targets(target.value)
        else:
            yield target

    def visit_Assign(self, node: ast.Assign):
        for target in node.targets:
            for element in self._flatten_targets(target):
                if isinstance(element, (ast.Attribute, ast.Subscript)):
                    self._record(element, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign):
        self._record(node.target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign):
        if node.value is not None:
            self._record(node.target, node)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete):
        for target in node.targets:
            self._record(target, node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATOR_METHODS:
            self._record(func.value, node)
        if (
            not self.armed
            and isinstance(func, ast.Attribute)
            and func.attr == "start"
            and not node.args
        ):
            # ``t.start()`` in __init__: from here on another thread may
            # observe the instance, so subsequent writes are real.
            self.armed = True
        self.generic_visit(node)

    # -- lock scopes ------------------------------------------------------------

    def visit_With(self, node: ast.With):
        acquired: list[str] = []
        for item in node.items:
            attr = _self_attr(item.context_expr)
            if attr is not None and attr in self.locks.locks:
                self.acquisitions.append((attr, tuple(self.held), node))
                acquired.append(attr)
                self.held.append(attr)
        for stmt in node.body:
            self.visit(stmt)
        for _ in acquired:
            self.held.pop()

    # -- deferred execution boundaries --------------------------------------------

    def _visit_deferred(self, node):
        saved, self.held = self.held, []
        # A closure defined pre-start still *runs* on the worker thread,
        # so deferred bodies are always armed.
        saved_armed, self.armed = self.armed, True
        for stmt in getattr(node, "body", ()):
            if isinstance(stmt, ast.AST):
                self.visit(stmt)
        self.held = saved
        self.armed = saved_armed

    def visit_FunctionDef(self, node: ast.FunctionDef):
        self._visit_deferred(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef):
        self._visit_deferred(node)

    def visit_Lambda(self, node: ast.Lambda):
        pass  # expression lambdas: no statements to mutate state


def iter_classes_with_locks(tree: ast.AST):
    """Every class in the tree that owns at least one lock attribute."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            locks = lock_attrs_of_class(node)
            if locks.locks:
                yield node, locks


def iter_own_functions(cls: ast.ClassDef):
    """The class's direct methods (not methods of nested classes)."""
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield stmt


def collect_mutations(
    cls: ast.ClassDef, locks: ClassLocks
) -> tuple[list[Mutation], list[tuple[str, tuple[str, ...], ast.AST]]]:
    """All mutations and lock acquisitions in a class's methods.

    Methods named ``*_locked`` (the project convention for "caller
    holds the lock") are exempt.  ``__init__`` bodies are visited
    *disarmed*: writes before the first ``t.start()`` call are safe
    (construction is single-threaded until a worker thread exists) and
    are skipped, while writes after it are collected like any other
    method's.
    """
    mutations: list[Mutation] = []
    acquisitions: list[tuple[str, tuple[str, ...], ast.AST]] = []
    for fn in iter_own_functions(cls):
        if fn.name.endswith("_locked"):
            continue
        visitor = _MutationVisitor(locks, fn.name, armed=fn.name != "__init__")
        for stmt in fn.body:
            visitor.visit(stmt)
        mutations.extend(visitor.mutations)
        acquisitions.extend(visitor.acquisitions)
    return mutations, acquisitions
