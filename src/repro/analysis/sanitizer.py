"""Runtime lock-order sanitizer: instrumented locks behind a factory.

The static ``lock-order`` rule sees only *syntactic* nesting of ``with``
blocks; it cannot follow a call chain like ``Redirector.locate`` (which
holds ``Redirector._lock``) into ``HealthTracker.available`` (which
takes ``HealthTracker._lock``).  This module covers that dynamic half:

- :class:`SanitizedLock` / :class:`SanitizedRLock` wrap the stdlib
  primitives and report every acquisition/release to a global
  :class:`LockOrderMonitor`;
- the monitor keeps one *order graph* over lock **roles** (names like
  ``"Czar._merge_lock"``, shared by every instance of the class, the
  way kernel lockdep keys by lock class) and raises
  :class:`LockOrderViolation` the moment a thread acquires lock B while
  holding lock A after some thread previously held B before A --
  a potential deadlock, caught even when this run does not deadlock;
- production code never names the stdlib primitives directly: it calls
  :func:`make_lock` / :func:`make_rlock` / :func:`make_condition`,
  which return plain ``threading`` objects normally and sanitized
  wrappers when ``REPRO_SANITIZE=1`` is set (or :func:`enable` was
  called).  The pytest fixture in ``tests/conftest.py`` resets the
  monitor between tests so the whole suite -- including the chaos and
  resilience runs -- doubles as a race-order test under
  ``REPRO_SANITIZE=1``.

Known limits (documented, deliberate): keying by role means two
instances of the same class count as one lock, so self-deadlocks
between sibling instances are reported as an inversion of the role with
itself only when a genuine nested acquisition happens; and a thread
parked in ``Condition.wait`` keeps its outer locks on the monitor's
per-thread stack (it cannot acquire anything new while blocked, so no
false edges arise).
"""

from __future__ import annotations

import os
import sys
import threading
from typing import Optional

__all__ = [
    "LockOrderViolation",
    "LockOrderMonitor",
    "SanitizedLock",
    "SanitizedRLock",
    "make_lock",
    "make_rlock",
    "make_condition",
    "enabled",
    "enable",
    "disable",
    "reset",
    "MONITOR",
]

_THIS_FILE = __file__


class LockOrderViolation(RuntimeError):
    """Two locks were acquired in both orders (a potential deadlock)."""


def _call_site() -> str:
    """``file:line (thread)`` of the frame that asked for the lock."""
    frame = sys._getframe(1)
    while frame is not None and frame.f_code.co_filename in (
        _THIS_FILE,
        threading.__file__,
    ):
        frame = frame.f_back
    if frame is None:
        return f"<unknown> ({threading.current_thread().name})"
    return (
        f"{frame.f_code.co_filename}:{frame.f_lineno} "
        f"({threading.current_thread().name})"
    )


class LockOrderMonitor:
    """The global acquisition-order graph plus per-thread held stacks.

    Edges mean "was held while acquiring": ``A -> B`` records that some
    thread held A when it acquired B.  A new acquisition of B while
    holding A is a violation iff the graph already contains a path
    ``B -> ... -> A`` (the opposite order was established somewhere).
    """

    def __init__(self):
        # The monitor's own mutex is a *plain* lock: it must never be
        # sanitized (it would recurse) and it nests inside every
        # sanitized lock by construction.
        self._mu = threading.Lock()
        # role -> {successor role -> first witness call site}
        self._edges: dict[str, dict[str, str]] = {}
        self._held = threading.local()

    # -- per-thread held stack (no _mu needed: thread-local) ------------------

    def _stack(self) -> list[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = self._held.stack = []
        return stack

    def held(self) -> tuple[str, ...]:
        """Roles the calling thread currently holds, outermost first."""
        return tuple(self._stack())

    # -- graph ----------------------------------------------------------------

    def _reachable_from(self, start: str) -> dict[str, Optional[str]]:
        """BFS parents map over the order graph (caller holds ``_mu``)."""
        parents: dict[str, Optional[str]] = {start: None}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for succ in self._edges.get(node, ()):
                if succ not in parents:
                    parents[succ] = node
                    frontier.append(succ)
        return parents

    def _chain(self, parents: dict[str, Optional[str]], end: str) -> list[str]:
        chain = [end]
        while parents[chain[-1]] is not None:
            chain.append(parents[chain[-1]])
        chain.reverse()
        return chain

    # -- acquisition protocol ---------------------------------------------------

    def on_acquire(self, role: str) -> None:
        """Record that the calling thread is taking ``role``.

        Called *before* the underlying acquire so a would-be deadlock
        raises instead of hanging.  Reentrant re-acquisition of a role
        already on this thread's stack is not re-checked.
        """
        stack = self._stack()
        if role in stack:
            stack.append(role)
            return
        held = list(stack)
        if held:
            with self._mu:
                parents = self._reachable_from(role)
                inverted = [h for h in held if h in parents]
                if inverted:
                    chain = self._chain(parents, inverted[0])
                    hops = []
                    for a, b in zip(chain, chain[1:]):
                        hops.append(
                            f"  {a!r} -> {b!r} first seen at "
                            f"{self._edges[a][b]}"
                        )
                    raise LockOrderViolation(
                        f"acquiring {role!r} while holding {held!r} at "
                        f"{_call_site()} inverts the established order:\n"
                        + "\n".join(hops)
                    )
                site = _call_site()
                for h in held:
                    self._edges.setdefault(h, {}).setdefault(role, site)
        stack.append(role)

    def on_release(self, role: str) -> None:
        """The calling thread dropped one acquisition of ``role``."""
        stack = self._stack()
        # Remove the innermost matching entry; tolerate a release from
        # a thread that never acquired (Lock allows cross-thread release).
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == role:
                del stack[i]
                return

    # -- inspection / lifecycle ----------------------------------------------------

    def edges(self) -> dict[str, dict[str, str]]:
        """A copy of the order graph (role -> successors -> witness)."""
        with self._mu:
            return {a: dict(succ) for a, succ in self._edges.items()}

    def reset(self) -> None:
        """Forget all recorded edges.

        Per-thread held stacks are *not* cleared (other threads may
        legitimately be holding locks); they drain as locks release.
        """
        with self._mu:
            self._edges.clear()


#: The process-wide monitor every sanitized lock reports to by default.
MONITOR = LockOrderMonitor()

#: Set by :mod:`repro.analysis.races` while the data-race detector is
#: enabled: sanitized locks feed it release->acquire happens-before edges.
_RACE_ENGINE = None
#: Set by :mod:`repro.analysis.sched` while a deterministic scheduler is
#: active: lock operations become cooperative yield points.
_SCHEDULER = None


class SanitizedLock:
    """A ``threading.Lock`` that reports acquisition order to a monitor."""

    _reentrant = False

    def __init__(self, name: str, monitor: Optional[LockOrderMonitor] = None):
        self.name = name
        self._monitor = monitor or MONITOR
        self._lock = self._make_inner()
        self._depth = threading.local()

    @staticmethod
    def _make_inner():
        return threading.Lock()

    def _depth_get(self) -> int:
        return getattr(self._depth, "n", 0)

    def _depth_set(self, n: int) -> None:
        self._depth.n = n

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        reentry = self._reentrant and self._depth_get() > 0
        if not reentry:
            # Check *before* blocking so a would-be deadlock raises.
            self._monitor.on_acquire(self.name)
        scheduler = _SCHEDULER
        if blocking and scheduler is not None and scheduler.manages_current():
            got = self._acquire_cooperative(scheduler)
        else:
            got = self._lock.acquire(blocking, timeout)
        if not got:
            if not reentry:
                self._monitor.on_release(self.name)
            return False
        if reentry:
            self._monitor.on_acquire(self.name)  # depth bump, no re-check
        self._depth_set(self._depth_get() + 1)
        if not reentry:
            engine = _RACE_ENGINE
            if engine is not None:
                engine.lock_acquired(self)
        return True

    def _acquire_cooperative(self, scheduler) -> bool:
        """Yield/try-acquire loop so a managed thread never really blocks."""
        while True:
            scheduler.yield_point()
            if self._lock.acquire(False):
                return True
            if not scheduler.block_on_lock(self):
                # Scheduler entered free-run (stall/finish): block for real.
                return self._lock.acquire(True)

    def release(self) -> None:
        depth = self._depth_get()
        if depth <= 1:
            # Publish this thread's clock on the lock *before* the next
            # owner can acquire it: release->acquire is an HB edge.
            engine = _RACE_ENGINE
            if engine is not None:
                engine.lock_released(self)
        self._lock.release()
        self._depth_set(max(depth - 1, 0))
        self._monitor.on_release(self.name)
        if depth <= 1:
            scheduler = _SCHEDULER
            if scheduler is not None:
                scheduler.lock_released(self)

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc):
        self.release()
        return False

    def locked(self) -> bool:
        return self._lock.locked()

    def __repr__(self):
        return f"{type(self).__name__}({self.name!r})"


class SanitizedRLock(SanitizedLock):
    """A ``threading.RLock`` wrapper, usable under ``threading.Condition``.

    Implements the private ``_release_save`` / ``_acquire_restore`` /
    ``_is_owned`` protocol so ``Condition.wait`` keeps the monitor's
    per-thread stack consistent across the full release/re-acquire.
    """

    _reentrant = True

    @staticmethod
    def _make_inner():
        return threading.RLock()

    # -- Condition protocol ------------------------------------------------------

    def _release_save(self):
        engine = _RACE_ENGINE
        if engine is not None:
            engine.lock_released(self)
        state = self._lock._release_save()
        depth = self._depth_get()
        self._depth_set(0)
        for _ in range(depth):
            self._monitor.on_release(self.name)
        scheduler = _SCHEDULER
        if scheduler is not None:
            scheduler.lock_released(self)
        return (state, depth)

    def _acquire_restore(self, state):
        inner_state, depth = state
        self._monitor.on_acquire(self.name)
        self._lock._acquire_restore(inner_state)
        self._depth_set(depth)
        for _ in range(depth - 1):
            self._monitor.on_acquire(self.name)
        engine = _RACE_ENGINE
        if engine is not None:
            engine.lock_acquired(self)

    def _is_owned(self) -> bool:
        return self._lock._is_owned()


# -- factories: the only lock constructors production code should use -----------

_FORCED: Optional[bool] = None


def enabled() -> bool:
    """Is sanitization active for locks created *from now on*?

    True under ``REPRO_SANITIZE=1`` (lock order only), under the race
    modes (``race`` / ``race:report``, which need acquire/release HB
    edges), and while a deterministic scheduler or the race engine is
    active in-process.
    """
    if _FORCED is not None:
        return _FORCED
    if _RACE_ENGINE is not None or _SCHEDULER is not None:
        return True
    return os.environ.get("REPRO_SANITIZE", "") in {"1", "race", "race:report"}


def enable() -> None:
    """Force sanitization on regardless of ``REPRO_SANITIZE``."""
    global _FORCED
    _FORCED = True


def disable() -> None:
    """Return to ``REPRO_SANITIZE`` environment control."""
    global _FORCED
    _FORCED = None


def reset() -> None:
    """Clear the global monitor's order graph (between tests)."""
    MONITOR.reset()


def make_lock(name: str) -> "threading.Lock | SanitizedLock":
    """A mutex named for its role, e.g. ``make_lock("Czar._merge_lock")``."""
    if enabled():
        return SanitizedLock(name)
    return threading.Lock()


def make_rlock(name: str) -> "threading.RLock | SanitizedRLock":
    """A reentrant mutex named for its role."""
    if enabled():
        return SanitizedRLock(name)
    return threading.RLock()


def make_condition(lock=None, name: str = "condition") -> threading.Condition:
    """A condition variable over ``lock`` (sanitized when active).

    Pass the owning object's (possibly sanitized) lock to share it, the
    way :class:`~repro.qserv.worker.QservWorker` couples its queue
    condition to its state lock.
    """
    if lock is None:
        lock = make_rlock(name)
    if _SCHEDULER is not None:
        # Under a deterministic scheduler a real Condition.wait would
        # park the managed thread (and the token) in the OS; the
        # cooperative variant parks on the scheduler instead.
        from . import sched as _sched

        return _sched.CooperativeCondition(lock, name)
    return threading.Condition(lock)


# Under the race modes the detector must exist before any tracked class
# is constructed, so importing the lock factories (which every qserv
# module does) boots it straight from the environment.
_env_mode = os.environ.get("REPRO_SANITIZE", "")
if _env_mode.startswith("race"):
    from . import races as _races_mod

    _races_mod.enable(report=_env_mode == "race:report")
