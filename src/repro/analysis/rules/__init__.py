"""Rule modules; importing this package registers every rule."""

from . import deadline, guarded_by, lock_order, sql_template, swallow  # noqa: F401
