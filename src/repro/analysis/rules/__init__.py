"""Rule modules; importing this package registers every rule."""

from . import (  # noqa: F401
    blocking_lock,
    deadline,
    fsync_ack,
    guarded_by,
    lock_order,
    shared_mutation,
    span_leak,
    sql_template,
    swallow,
)
