"""Rule modules; importing this package registers every rule."""

from . import (  # noqa: F401
    deadline,
    guarded_by,
    lock_order,
    span_leak,
    sql_template,
    swallow,
)
