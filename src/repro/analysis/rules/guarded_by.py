"""guarded-by: lock-consistency of attribute mutations.

In a class that owns locks, the rule infers which state each lock
guards from the code itself -- a *guard association* is established the
first time an attribute (or any attribute of a shared object such as
the czar's per-query ``QueryStats``) is mutated inside a ``with
self.<lock>:`` block.  Every other mutation of the same state must then
hold at least one of its associated locks:

- **exact-path discipline** for ``self`` state: if ``self._attempt_pool``
  is assigned under ``_attempt_pool_lock`` anywhere, assigning it
  elsewhere without the lock is a finding;
- **object-level discipline** for non-``self`` roots: if *any*
  attribute of a variable named ``stats`` is mutated under a lock in
  this class, *every* ``stats.*`` mutation in the class must hold one
  of the observed locks.  This is deliberately heuristic (same class +
  same variable name ~ same shared object role) -- it is exactly how
  the czar threads one ``QueryStats`` through its dispatch closures.

Methods named ``*_locked`` (the documented "caller holds the lock"
convention) are exempt.  ``__init__`` is exempt only *up to* the first
``t.start()`` call: before a worker thread exists construction is
single-threaded, but a write landing after ``start()`` races with that
thread like any other unguarded mutation.
"""

from __future__ import annotations

from ..astutil import collect_mutations, iter_classes_with_locks
from ..core import Rule, register

__all__ = ["GuardedByRule"]


@register
class GuardedByRule(Rule):
    name = "guarded-by"
    description = (
        "attributes mutated under a lock somewhere must hold an "
        "associated lock everywhere"
    )
    severity = "error"

    def check(self, ctx):
        for cls, locks in iter_classes_with_locks(ctx.tree):
            mutations, _ = collect_mutations(cls, locks)

            exact_guards: dict[tuple[str, tuple[str, ...]], set[str]] = {}
            object_guards: dict[str, set[str]] = {}
            for m in mutations:
                guarded = m.held & locks.locks
                if not guarded:
                    continue
                if m.root == "self":
                    exact_guards.setdefault((m.root, m.path), set()).update(guarded)
                else:
                    object_guards.setdefault(m.root, set()).update(guarded)

            for m in mutations:
                if m.root == "self":
                    guards = exact_guards.get((m.root, m.path))
                else:
                    guards = object_guards.get(m.root)
                if not guards or m.held & guards:
                    continue
                lock_names = ", ".join(sorted(guards))
                yield self.finding(
                    ctx,
                    m.node,
                    f"'{m.dotted}' is mutated in {cls.name}.{m.function} "
                    f"without holding {lock_names}, which guard(s) it "
                    f"elsewhere in class {cls.name}",
                )
