"""exception-swallow: broad catches must re-raise, log, or be suppressed.

A dispatch-path ``except Exception: pass`` turns a worker bug into a
silently missing chunk.  The rule flags two shapes:

- a *broad* handler (bare ``except:``, ``except Exception``, ``except
  BaseException``) that neither re-raises, nor uses the bound exception
  value, nor calls a logging method;
- any handler -- typed or not -- whose body is exactly ``pass``
  (silent discard; legitimate ones carry a suppression with a reason).
"""

from __future__ import annotations

import ast

from ..core import Rule, register

__all__ = ["SwallowRule"]

_BROAD = {"Exception", "BaseException"}
_LOG_METHODS = {
    "debug", "info", "warning", "error", "exception", "critical", "log",
}


def _type_names(node) -> list[str]:
    if node is None:
        return []
    if isinstance(node, ast.Tuple):
        return [n for e in node.elts for n in _type_names(e)]
    if isinstance(node, ast.Name):
        return [node.id]
    if isinstance(node, ast.Attribute):
        return [node.attr]
    return []


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    return any(name in _BROAD for name in _type_names(handler.type))


@register
class SwallowRule(Rule):
    name = "exception-swallow"
    description = "broad except handlers must re-raise, log, or use the error"
    severity = "warning"

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            body_is_pass = all(isinstance(s, ast.Pass) for s in node.body)
            broad = _is_broad(node)
            if not broad and not body_is_pass:
                continue
            if body_is_pass:
                kind = "silently discarded"
            else:
                raises = uses = logs = False
                for sub in ast.walk(ast.Module(body=node.body, type_ignores=[])):
                    if isinstance(sub, ast.Raise):
                        raises = True
                    elif (
                        isinstance(sub, ast.Name)
                        and node.name is not None
                        and sub.id == node.name
                    ):
                        uses = True
                    elif (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in _LOG_METHODS
                    ):
                        logs = True
                if raises or uses or logs:
                    continue
                kind = "swallowed without re-raise, logging, or inspection"
            caught = ", ".join(_type_names(node.type)) or "everything"
            yield self.finding(
                ctx,
                node,
                f"exception ({caught}) {kind}: re-raise, log, or add "
                "'# reprolint: disable=exception-swallow -- <reason>'",
            )
