"""shared-mutation: guarded state must not leak out through aliases.

The guarded-by rule checks ``self._entries[k] = v`` directly; it cannot
see the laundered version::

    with self._lock:
        entries = self._entries    # alias taken under the lock
    entries[k] = v                 # ...mutated after it was released

The alias is the same object, so the mutation races exactly like the
direct one -- but the attribute path is gone.  This rule tracks local
aliases of *protected* attributes and flags any in-place mutation of an
alias made while holding none of the attribute's guard locks.

Protected attributes are the union of:

- attributes the class mutates under one of its locks somewhere
  (the guarded-by association, ``__init__`` pre-start writes exempt);
- attributes declared shared via the runtime race detector's
  ``@track_shared("attr", ...)`` class decorator -- the static half of
  the tracking contract, guarded by *any* of the class's locks.

An alias dies when its name is rebound.  Rebinding to a *copy*
(``list(self._x)``, ``dict(self._x)``, ``self._x.copy()``) never
creates an alias in the first place -- only a bare ``local = self.attr``
does.  Mutations inside nested functions count with an empty held set:
a closure runs after the ``with`` block exited, which is exactly the
escape this rule exists to catch.
"""

from __future__ import annotations

import ast

from ..astutil import (
    MUTATOR_METHODS,
    collect_mutations,
    iter_classes_with_locks,
    iter_own_functions,
)
from ..core import Rule, register

__all__ = ["SharedMutationRule"]


def _self_attr(node: ast.AST):
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _tracked_attrs(cls: ast.ClassDef) -> set[str]:
    """Attribute names declared via ``@track_shared("a", "b")``."""
    out: set[str] = set()
    for deco in cls.decorator_list:
        if not isinstance(deco, ast.Call):
            continue
        func = deco.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
        if name != "track_shared":
            continue
        for arg in deco.args:
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                out.add(arg.value)
    return out


class _AliasVisitor(ast.NodeVisitor):
    """Track lock nesting plus live aliases of protected attributes."""

    def __init__(self, guards: dict[str, set[str]], locks, function: str):
        self.guards = guards          # attr -> lock names that satisfy it
        self.locks = locks
        self.function = function
        self.held: list[str] = []
        self.aliases: dict[str, str] = {}   # local name -> attr
        self.hits: list[tuple[ast.AST, str, str]] = []

    def _held_closure(self) -> set[str]:
        held: set[str] = set()
        for attr in self.held:
            held |= self.locks.held_by(attr)
        return held

    def _flag(self, node: ast.AST, local: str) -> None:
        attr = self.aliases[local]
        if self._held_closure() & self.guards[attr]:
            return
        self.hits.append((node, local, attr))

    def _root_name(self, node: ast.AST):
        cur = node
        while isinstance(cur, (ast.Attribute, ast.Subscript)):
            cur = cur.value
        return cur.id if isinstance(cur, ast.Name) else None

    # -- alias creation / death --------------------------------------------------

    def visit_Assign(self, node: ast.Assign):
        for target in node.targets:
            if isinstance(target, ast.Name):
                attr = _self_attr(node.value)
                if attr is not None and attr in self.guards:
                    self.aliases[target.id] = attr
                else:
                    self.aliases.pop(target.id, None)
            elif isinstance(target, (ast.Subscript, ast.Attribute)):
                root = self._root_name(target)
                if root is not None and root in self.aliases:
                    self._flag(node, root)
        self.generic_visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign):
        root = self._root_name(node.target)
        if root is not None and root in self.aliases:
            # ``alias[k] += 1`` mutates; plain ``alias += 1`` rebinds.
            if isinstance(node.target, (ast.Subscript, ast.Attribute)):
                self._flag(node, root)
            else:
                self.aliases.pop(root, None)
        self.generic_visit(node.value)

    def visit_Delete(self, node: ast.Delete):
        for target in node.targets:
            if isinstance(target, ast.Name):
                self.aliases.pop(target.id, None)
            else:
                root = self._root_name(target)
                if root is not None and root in self.aliases:
                    self._flag(node, root)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in MUTATOR_METHODS
            and isinstance(func.value, ast.Name)
            and func.value.id in self.aliases
        ):
            self._flag(node, func.value.id)
        self.generic_visit(node)

    # -- lock scopes --------------------------------------------------------------

    def visit_With(self, node: ast.With):
        acquired: list[str] = []
        for item in node.items:
            attr = _self_attr(item.context_expr)
            if attr is not None and attr in self.locks.locks:
                acquired.append(attr)
                self.held.append(attr)
        for stmt in node.body:
            self.visit(stmt)
        for _ in acquired:
            self.held.pop()

    # -- deferred bodies: closures escape the lock scope by construction -----------

    def _visit_deferred(self, node):
        saved, self.held = self.held, []
        for stmt in getattr(node, "body", ()):
            if isinstance(stmt, ast.AST):
                self.visit(stmt)
        self.held = saved

    def visit_FunctionDef(self, node: ast.FunctionDef):
        self._visit_deferred(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef):
        self._visit_deferred(node)

    def visit_Lambda(self, node: ast.Lambda):
        pass


@register
class SharedMutationRule(Rule):
    name = "shared-mutation"
    description = (
        "guarded/tracked attributes must not be mutated through "
        "aliases escaping the lock scope"
    )
    severity = "error"

    def check(self, ctx):
        for cls, locks in iter_classes_with_locks(ctx.tree):
            mutations, _ = collect_mutations(cls, locks)
            guards: dict[str, set[str]] = {}
            for m in mutations:
                if m.root != "self" or not m.path:
                    continue
                locked = m.held & locks.locks
                if locked:
                    guards.setdefault(m.path[0], set()).update(locked)
            for attr in _tracked_attrs(cls):
                guards.setdefault(attr, set()).update(locks.locks)
            if not guards:
                continue
            for fn in iter_own_functions(cls):
                if fn.name.endswith("_locked") or fn.name == "__init__":
                    continue
                visitor = _AliasVisitor(guards, locks, fn.name)
                for stmt in fn.body:
                    visitor.visit(stmt)
                for node, local, attr in visitor.hits:
                    lock_names = ", ".join(sorted(guards[attr]))
                    yield self.finding(
                        ctx,
                        node,
                        f"'{local}' aliases guarded attribute "
                        f"'self.{attr}' and is mutated in "
                        f"{cls.name}.{fn.name} without holding "
                        f"{lock_names}: the alias escapes the lock scope",
                    )
