"""span-leak: every started trace span must be closed on all paths.

A :func:`repro.obs.trace.span` starts timing at the call; a span that
is neither used as a context manager nor explicitly ``.end()``-ed stays
open forever when an exception unwinds the frame -- the trace then
renders an "unfinished" span and its duration is garbage.  The rule
accepts three closing shapes, checked per function scope:

- the call is the context expression of a ``with`` statement (directly,
  or via a variable later used in a ``with``);
- the variable has an explicit ``.end(...)`` call somewhere in the same
  scope (typically inside ``finally:``);
- the span visibly *escapes* the scope -- passed as a call argument
  (``pool.submit(run, sp)``), returned, or stored into an attribute or
  subscript -- so responsibility moves to the receiver.

Calls are matched conservatively: a bare ``span(...)`` name, or an
attribute call ``X.span(...)`` where ``X`` is named ``trace`` /
``obs_trace`` or is itself a ``.trace`` attribute -- i.e. the
``repro.obs.trace`` API, not arbitrary ``.span()`` methods.
"""

from __future__ import annotations

import ast

from ..core import Rule, register

__all__ = ["SpanLeakRule"]

_TRACE_OWNERS = {"trace", "obs_trace"}

_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _is_span_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "span"
    if isinstance(func, ast.Attribute) and func.attr == "span":
        owner = func.value
        if isinstance(owner, ast.Name):
            return owner.id in _TRACE_OWNERS
        if isinstance(owner, ast.Attribute):
            return owner.attr in _TRACE_OWNERS or owner.attr == "trace"
    return False


def _scope_nodes(scope: ast.AST) -> list:
    """Every node lexically in ``scope``, not descending into nested defs."""
    out = []
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        out.append(node)
        if not isinstance(node, _SCOPES):
            stack.extend(ast.iter_child_nodes(node))
    return out


def _name_is_closed(name: str, nodes: list) -> bool:
    """Does any node in the scope close or hand off the named span?"""
    for node in nodes:
        if isinstance(node, ast.withitem):
            ce = node.context_expr
            if isinstance(ce, ast.Name) and ce.id == name:
                return True
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "end"
                and isinstance(func.value, ast.Name)
                and func.value.id == name
            ):
                return True
            values = list(node.args) + [kw.value for kw in node.keywords]
            if any(isinstance(a, ast.Name) and a.id == name for a in values):
                return True  # handed off as a call argument
        elif isinstance(node, ast.Return):
            if any(
                isinstance(sub, ast.Name) and sub.id == name
                for sub in ast.walk(node)
            ):
                return True  # returned to the caller
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            value = node.value
            if isinstance(value, ast.Name) and value.id == name:
                return True  # stored (self.x = sp / d[k] = sp / aliased)
    return False


@register
class SpanLeakRule(Rule):
    name = "span-leak"
    description = "obs.trace.span(...) must be with-managed, .end()-ed, or handed off"
    severity = "error"

    def check(self, ctx):
        scopes = [ctx.tree] + [
            node for node in ast.walk(ctx.tree) if isinstance(node, _SCOPES)
        ]
        for scope in scopes:
            nodes = _scope_nodes(scope)
            parent = {}
            for node in nodes:
                for child in ast.iter_child_nodes(node):
                    parent.setdefault(child, node)
            for node in nodes:
                if not isinstance(node, ast.Call) or not _is_span_call(node):
                    continue
                holder = parent.get(node)
                if isinstance(holder, ast.withitem) and holder.context_expr is node:
                    continue  # with obs_trace.span(...):
                if isinstance(holder, (ast.Call, ast.Return)):
                    continue  # passed along / returned: receiver closes it
                if isinstance(holder, ast.Attribute) and holder.attr in (
                    "end",
                    "__enter__",
                ):
                    continue  # span(...).end() chained directly
                if isinstance(holder, (ast.Assign, ast.AnnAssign)):
                    targets = (
                        holder.targets
                        if isinstance(holder, ast.Assign)
                        else [holder.target]
                    )
                    names = [t.id for t in targets if isinstance(t, ast.Name)]
                    if not names:
                        continue  # stored into an attribute/subscript
                    if any(_name_is_closed(n, nodes) for n in names):
                        continue
                    label = repr(names[0])
                else:
                    label = "the started span"
                yield self.finding(
                    ctx,
                    node,
                    f"span is started but {label} is never closed: use it in "
                    "a 'with' statement, call .end() on every path (e.g. in "
                    "'finally:'), or hand it off explicitly",
                )
