"""sql-template: SQL built by string formatting must parse in our dialect.

The czar, worker, and secondary index build a handful of SQL statements
with f-strings (``CREATE TABLE {name} AS SELECT ...``).  Nothing checks
that text until a worker executes it -- dialect drift between what the
frontend emits and what :mod:`repro.sql.parser` accepts shows up as a
runtime chunk failure.  This rule extracts every SQL-looking template
(f-string, ``%``-format, ``str.format``), substitutes neutral
placeholder identifiers for the interpolated holes, and round-trips the
result through the project parser: parse, regenerate with ``to_sql()``,
parse again.  Both failures are findings.
"""

from __future__ import annotations

import ast
import re

from ..core import Rule, register

__all__ = ["SqlTemplateRule"]

#: First keyword -> allowed second keywords (None = anything).  Prose
#: that merely *starts* with a verb ("INSERT columns ... do not match")
#: is not a statement; real INSERTs continue with INTO.
_SQL_STARTERS = {
    "SELECT": None,
    "UPDATE": None,
    "INSERT": {"INTO", "IGNORE", "OR"},
    "REPLACE": {"INTO"},
    "DELETE": {"FROM"},
    "CREATE": {"TABLE", "INDEX", "DATABASE", "TEMPORARY", "UNIQUE", "OR"},
    "DROP": {"TABLE", "INDEX", "DATABASE"},
}
_PERCENT_RE = re.compile(r"%\(?[A-Za-z_][A-Za-z0-9_]*\)?[sdifrx]|%[sdifrx]")
_FORMAT_RE = re.compile(r"\{[^{}]*\}")
# LIMIT/OFFSET take integer literals, not identifiers.
_LIMIT_RE = re.compile(r"\b(LIMIT|OFFSET)\s+(__ph\d+__)", re.IGNORECASE)


def _looks_like_sql(text: str) -> bool:
    words = text.lstrip().split(None, 2)
    if not words or words[0].upper() not in _SQL_STARTERS:
        return False
    second = _SQL_STARTERS[words[0].upper()]
    if second is None:
        return True
    return len(words) > 1 and words[1].upper() in second


class _Placeholders:
    def __init__(self):
        self.n = 0

    def next(self) -> str:
        self.n += 1
        return f"__ph{self.n}__"


def _render_joinedstr(node: ast.JoinedStr, ph: _Placeholders) -> str:
    parts = []
    for value in node.values:
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            parts.append(value.value)
        else:
            parts.append(ph.next())
    return "".join(parts)


def extract_templates(tree: ast.AST):
    """Yield ``(node, rendered_sql_text)`` for every SQL-looking template."""
    for node in ast.walk(tree):
        ph = _Placeholders()
        if isinstance(node, ast.JoinedStr):
            text = _render_joinedstr(node, ph)
        elif (
            isinstance(node, ast.BinOp)
            and isinstance(node.op, ast.Mod)
            and isinstance(node.left, ast.Constant)
            and isinstance(node.left.value, str)
        ):
            text = _PERCENT_RE.sub(lambda _: ph.next(), node.left.value)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "format"
            and isinstance(node.func.value, ast.Constant)
            and isinstance(node.func.value.value, str)
        ):
            text = _FORMAT_RE.sub(lambda _: ph.next(), node.func.value.value)
        else:
            continue
        if _looks_like_sql(text):
            yield node, _LIMIT_RE.sub(r"\1 1", text)


@register
class SqlTemplateRule(Rule):
    name = "sql-template"
    description = (
        "string-formatted SQL must round-trip through repro.sql.parser"
    )
    severity = "error"

    def check(self, ctx):
        from ...sql.parser import ParseError, parse

        for node, text in extract_templates(ctx.tree):
            try:
                statements = parse(text)
            except ParseError as e:
                yield self.finding(
                    ctx,
                    node,
                    f"SQL template does not parse in the project dialect: {e} "
                    f"[template: {text!r}]",
                )
                continue
            for stmt in statements:
                regenerated = stmt.to_sql()
                try:
                    parse(regenerated)
                except ParseError as e:
                    yield self.finding(
                        ctx,
                        node,
                        "SQL template parses but does not round-trip "
                        f"through to_sql(): {e} [regenerated: {regenerated!r}]",
                    )
