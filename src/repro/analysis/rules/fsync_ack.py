"""fsync-before-ack: durable append paths must reach fsync before acking.

PR 7's crash-recovery contract is that ``JobJournal.append`` returning
True *means* the record is on disk: the submit path treats that return
value as the commit acknowledgement, and a crash after an ack must
replay the record.  A refactor that moves the ``os.fsync`` after an
early ``return True`` (or drops it) silently breaks exactly-once
recovery -- and no test notices until a kill lands in the window.

The rule pins that contract structurally.  In any class whose name
contains ``Journal`` or ``WAL``, every ``append*``/``commit*``/
``log_*`` method that performs a file write (an ``open(...)`` or
``.write(...)`` call) must:

- contain an ``os.fsync(...)`` call at all, and
- place every *acknowledging* return -- ``return`` of anything other
  than the constants ``None``/``False`` -- lexically **after** the last
  ``fsync`` call.  ``return False`` / bare ``return`` are refusal
  paths and may appear anywhere (``JobJournal.append`` refuses before
  writing when the queue is dead).

Lexical position approximates path sensitivity: a truthy return above
the fsync line is reachable without syncing on every straight-line
reading of the method, which is precisely the bug shape being pinned.
"""

from __future__ import annotations

import ast
import re

from ..core import Rule, register

__all__ = ["FsyncBeforeAckRule"]

_CLASS_RE = re.compile(r"Journal|WAL|Wal")
_METHOD_RE = re.compile(r"^(append|commit|log_)")


def _calls(fn: ast.AST):
    """Calls in the method body, skipping nested function definitions."""
    stack = list(getattr(fn, "body", ()))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _returns(fn: ast.AST):
    stack = list(getattr(fn, "body", ()))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Return):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _is_ack(ret: ast.Return) -> bool:
    """Does this return acknowledge (anything but None/False constants)?"""
    if ret.value is None:
        return False
    if isinstance(ret.value, ast.Constant) and ret.value.value in (None, False):
        return False
    return True


def _call_name(call: ast.Call):
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


@register
class FsyncBeforeAckRule(Rule):
    name = "fsync-before-ack"
    description = (
        "journal/WAL append methods must os.fsync before any "
        "acknowledging return"
    )
    severity = "error"

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef) or not _CLASS_RE.search(node.name):
                continue
            for fn in node.body:
                if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if not _METHOD_RE.match(fn.name):
                    continue
                writes = fsync_line = None
                for call in _calls(fn):
                    name = _call_name(call)
                    if name in ("open", "write"):
                        writes = call
                    if name == "fsync":
                        fsync_line = max(fsync_line or 0, call.lineno)
                if writes is None:
                    continue  # not a durable append (no file IO)
                if fsync_line is None:
                    yield self.finding(
                        ctx,
                        fn,
                        f"{node.name}.{fn.name} writes to a file but never "
                        f"calls os.fsync: an acked record may not survive "
                        f"a crash",
                    )
                    continue
                for ret in _returns(fn):
                    if _is_ack(ret) and ret.lineno < fsync_line:
                        yield self.finding(
                            ctx,
                            ret,
                            f"{node.name}.{fn.name} acknowledges at line "
                            f"{ret.lineno} before the os.fsync at line "
                            f"{fsync_line}: the ack can outrun durability",
                        )
