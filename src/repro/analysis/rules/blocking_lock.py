"""blocking-under-lock: no blocking calls inside a mutex scope.

A thread that sleeps, waits on a future, joins another thread, or does
file/socket IO while holding one of the class's locks stalls every
other thread contending for that lock -- the exact convoy shape that
turned the admission controller's p99 pathological under overload.
Inside any ``with self.<lock>:`` body (in a class that owns locks
created through the sanitizer factories or ``threading`` directly), the
rule flags:

- ``time.sleep(...)`` (also a bare ``sleep(...)`` import);
- ``<anything>.result(...)`` -- a ``Future.result`` rendezvous;
- ``<anything>.join()`` with zero positional arguments or a timeout
  keyword (``str.join`` takes exactly one positional and is ignored);
- ``<anything>.wait(...)`` / ``.wait_for(...)`` / bare ``wait(...)`` --
  **except** on the class's own condition variables: a cv wait
  *releases* the mutex, which is the one legitimate way to block under
  a lock;
- file and socket IO openings: ``open(...)``, ``os.fsync(...)``, and
  socket verbs (``connect``/``accept``/``recv``/``send``/``sendall``).

Deliberately lexical: a blocking call hidden behind a method call in
the same class is not followed (the runtime sanitizer and race modes
cover dynamic composition).  Durable-write paths that *must* fsync
under their journal lock carry a per-line suppression with a reason.
"""

from __future__ import annotations

import ast

from ..astutil import iter_classes_with_locks, iter_own_functions
from ..core import Rule, register

__all__ = ["BlockingUnderLockRule"]

_SOCKET_VERBS = {"connect", "accept", "recv", "recv_into", "send", "sendall"}


def _self_attr(node: ast.AST):
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _BlockingVisitor(ast.NodeVisitor):
    """Track ``with self.<lock>:`` nesting; collect blocking calls inside."""

    def __init__(self, locks, function: str):
        self.locks = locks
        self.function = function
        self.depth = 0
        self.hits: list[tuple[ast.Call, str]] = []

    def _blocking(self, node: ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "sleep":
                return "time.sleep"
            if func.id == "open":
                return "file open"
            if func.id == "wait":
                return "blocking wait"
            return None
        if not isinstance(func, ast.Attribute):
            return None
        attr = func.attr
        if attr == "sleep":
            return "time.sleep"
        if attr == "fsync":
            return "os.fsync"
        if attr == "result":
            return "Future.result"
        if attr == "open":
            return "file open"
        if attr in _SOCKET_VERBS:
            return f"socket .{attr}()"
        if attr == "join":
            # str.join takes exactly one positional arg and no keywords;
            # Thread/queue joins take none (or a timeout keyword).
            if len(node.args) == 1 and not node.keywords:
                return None
            return "join"
        if attr in ("wait", "wait_for"):
            receiver = _self_attr(func.value)
            if receiver is not None and receiver in self.locks.conditions:
                return None  # cv wait releases the mutex: legitimate
            return "blocking wait"
        return None

    def visit_Call(self, node: ast.Call):
        if self.depth > 0:
            why = self._blocking(node)
            if why is not None:
                self.hits.append((node, why))
        self.generic_visit(node)

    def visit_With(self, node: ast.With):
        acquired = 0
        for item in node.items:
            attr = _self_attr(item.context_expr)
            if attr is not None and attr in self.locks.locks:
                acquired += 1
            else:
                # ``with open(...)`` nested in a lock scope blocks too.
                self.visit(item.context_expr)
        self.depth += acquired
        for stmt in node.body:
            self.visit(stmt)
        self.depth -= acquired

    def _visit_deferred(self, node):
        saved, self.depth = self.depth, 0
        for stmt in getattr(node, "body", ()):
            if isinstance(stmt, ast.AST):
                self.visit(stmt)
        self.depth = saved

    def visit_FunctionDef(self, node: ast.FunctionDef):
        self._visit_deferred(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef):
        self._visit_deferred(node)

    def visit_Lambda(self, node: ast.Lambda):
        pass


@register
class BlockingUnderLockRule(Rule):
    name = "blocking-under-lock"
    description = (
        "no sleeps, future/thread waits, or file/socket IO while "
        "holding a lock (condition-variable waits exempt)"
    )
    severity = "error"

    def check(self, ctx):
        for cls, locks in iter_classes_with_locks(ctx.tree):
            for fn in iter_own_functions(cls):
                visitor = _BlockingVisitor(locks, fn.name)
                for stmt in fn.body:
                    visitor.visit(stmt)
                for node, why in visitor.hits:
                    yield self.finding(
                        ctx,
                        node,
                        f"{why} inside a lock scope in "
                        f"{cls.name}.{fn.name}: blocking while holding a "
                        f"lock convoys every contender",
                    )
