"""lock-order: cycles in the static nested-``with`` acquisition graph.

Every syntactic ``with self.<lockA>:`` block containing a nested ``with
self.<lockB>:`` contributes an edge ``ClassName.lockA ->
ClassName.lockB`` to a whole-tree graph (condition variables collapse
onto the mutex they wrap, so ``_queue_cv`` nesting inside ``_lock`` is
not a false self-edge).  After all files are checked, any cycle in the
graph is reported once, anchored at the witness acquisition that closed
it.

This is the static half of the lock-order story; acquisitions hidden
behind method calls are covered at runtime by
:mod:`repro.analysis.sanitizer` (``REPRO_SANITIZE=1``).
"""

from __future__ import annotations

from ..astutil import collect_mutations, iter_classes_with_locks
from ..core import Finding, Rule, register

__all__ = ["LockOrderRule"]


@register
class LockOrderRule(Rule):
    name = "lock-order"
    description = "nested with-blocks must acquire locks in one global order"
    severity = "error"

    def __init__(self):
        #: edge (a, b) -> (path, line, human description) first witness
        self._edges: dict[tuple[str, str], tuple[str, int, str]] = {}

    def check(self, ctx):
        for cls, locks in iter_classes_with_locks(ctx.tree):
            _, acquisitions = collect_mutations(cls, locks)
            for attr, held_attrs, node in acquisitions:
                if not held_attrs:
                    continue
                inner = f"{cls.name}.{locks.canonical(attr)}"
                for held in held_attrs:
                    outer = f"{cls.name}.{locks.canonical(held)}"
                    if outer == inner:
                        continue
                    self._edges.setdefault(
                        (outer, inner),
                        (
                            ctx.path,
                            getattr(node, "lineno", 1),
                            f"{inner} acquired while holding {outer}",
                        ),
                    )
        return ()

    def finalize(self):
        graph: dict[str, set[str]] = {}
        for a, b in self._edges:
            graph.setdefault(a, set()).add(b)
            graph.setdefault(b, set())

        findings: list[Finding] = []
        seen_cycles: set[frozenset] = set()
        # Iterative DFS with colors; report each back-edge's cycle once.
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {n: WHITE for n in graph}
        stack_path: list[str] = []

        def dfs(start: str):
            work: list[tuple[str, str | None]] = [(start, None)]
            while work:
                node, phase = work.pop()
                if phase == "exit":
                    color[node] = BLACK
                    stack_path.pop()
                    continue
                if color[node] == BLACK:
                    continue
                if color[node] == GRAY:
                    continue
                color[node] = GRAY
                stack_path.append(node)
                work.append((node, "exit"))
                for succ in sorted(graph[node]):
                    if color[succ] == GRAY:
                        cycle = stack_path[stack_path.index(succ):] + [succ]
                        key = frozenset(cycle)
                        if key not in seen_cycles:
                            seen_cycles.add(key)
                            findings.append(self._cycle_finding(cycle))
                    elif color[succ] == WHITE:
                        work.append((succ, None))

        for node in sorted(graph):
            if color[node] == WHITE:
                dfs(node)
        return findings

    def _cycle_finding(self, cycle: list[str]) -> Finding:
        hops = []
        witness_path, witness_line = "<unknown>", 1
        for a, b in zip(cycle, cycle[1:]):
            path, line, desc = self._edges[(a, b)]
            hops.append(f"{desc} at {path}:{line}")
            witness_path, witness_line = path, line
        return Finding(
            rule=self.name,
            path=witness_path,
            line=witness_line,
            col=1,
            message=(
                "lock-order cycle: " + " -> ".join(cycle)
                + " [" + "; ".join(hops) + "]"
            ),
            severity=self.severity,
        )
