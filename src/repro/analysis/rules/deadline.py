"""deadline-threading: deadline-scoped functions must bound every wait.

PR 2 threads a :class:`~repro.xrd.retry.Deadline` from ``Czar.submit``
through the Xrootd client down to the worker's result wait.  That
discipline dies the first time someone adds an unbounded ``.result()``
or ``.wait()`` on the path: the deadline still *exists* but a hung
executor blocks forever anyway.

The rule: inside any function that takes a ``deadline`` parameter (or a
nested function closing over one), every blocking primitive --
``Future.result``, ``Event/Condition.wait``, ``Thread.join``,
``concurrent.futures.wait`` -- must either receive a timeout argument
or mention ``deadline`` in its arguments (forwarding it to a
deadline-aware callee counts).
"""

from __future__ import annotations

import ast

from ..core import Rule, register

__all__ = ["DeadlineRule"]

#: Method names that block until an external event.
BLOCKING_METHODS = {"result", "wait", "join"}


def _mentions_deadline(call: ast.Call) -> bool:
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        for node in ast.walk(arg):
            if isinstance(node, ast.Name) and node.id == "deadline":
                return True
    return False


def _has_timeout(call: ast.Call) -> bool:
    if any(kw.arg == "timeout" for kw in call.keywords):
        return True
    # Positional form: event.wait(t), future.result(t), thread.join(t).
    return bool(call.args) and isinstance(call.func, ast.Attribute)


def _is_module_level_wait(func: ast.expr) -> bool:
    """``wait(...)`` / ``_futures_wait(...)`` (concurrent.futures.wait)."""
    return isinstance(func, ast.Name) and (
        func.id == "wait" or func.id.endswith("_wait")
    )


class _Scope(ast.NodeVisitor):
    """Visit one deadline-scoped function body, including nested defs."""

    def __init__(self, rule: "DeadlineRule", ctx):
        self.rule = rule
        self.ctx = ctx
        self.findings = []

    def visit_FunctionDef(self, node):
        # A nested def that *rebinds* deadline starts a fresh scope and
        # is picked up by the outer module walk on its own merits.
        if "deadline" in _param_names(node):
            return
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Call(self, node: ast.Call):
        func = node.func
        blocking = (
            isinstance(func, ast.Attribute) and func.attr in BLOCKING_METHODS
        ) or _is_module_level_wait(func)
        if blocking and not _mentions_deadline(node) and not _has_timeout(node):
            what = (
                f".{func.attr}()" if isinstance(func, ast.Attribute)
                else f"{func.id}()"
            )
            self.findings.append(
                self.rule.finding(
                    self.ctx,
                    node,
                    f"unbounded {what} inside a deadline-scoped function: "
                    "pass timeout=... or forward the deadline",
                )
            )
        self.generic_visit(node)


def _param_names(fn) -> set[str]:
    args = fn.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return set(names)


@register
class DeadlineRule(Rule):
    name = "deadline-threading"
    description = (
        "functions taking a deadline must forward it to every blocking call"
    )
    severity = "error"

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if "deadline" not in _param_names(node):
                continue
            scope = _Scope(self, ctx)
            for stmt in node.body:
                scope.visit(stmt)
            yield from scope.findings
