"""reprolint framework: findings, rule registry, suppressions, runner.

A *rule* is a class with a ``name``, a ``description``, a default
``severity``, and a ``check(ctx)`` method yielding :class:`Finding`
objects for one parsed file.  Rules needing whole-tree state (the
lock-order graph spans czar, worker, and xrd) also implement
``finalize()``, called once after every file was checked.

Suppression is per line and per rule::

    self._results.pop(path)  # reprolint: disable=guarded-by -- caller holds the lock

A comment-only suppression line covers the *next* source line too, for
statements too long to share a line with their pragma.  Suppressed
findings are still collected (reporters can show them) but do not fail
the run.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

__all__ = [
    "Finding",
    "Rule",
    "FileContext",
    "LintResult",
    "register",
    "all_rules",
    "lint_paths",
]

_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"  # "error" | "warning"

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


class Rule:
    """Base class for checkers; subclasses register via :func:`register`."""

    name: str = ""
    description: str = ""
    severity: str = "error"

    def check(self, ctx: "FileContext") -> Iterable[Finding]:
        raise NotImplementedError

    def finalize(self) -> Iterable[Finding]:
        """Whole-tree findings, after every file was checked."""
        return ()

    def finding(
        self, ctx: "FileContext", node: ast.AST, message: str,
        severity: Optional[str] = None,
    ) -> Finding:
        return Finding(
            rule=self.name,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            severity=severity or self.severity,
        )


class FileContext:
    """One parsed source file plus its suppression map."""

    def __init__(self, path: str, source: str):
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self.suppressions = self._parse_suppressions(self.lines)

    @staticmethod
    def _parse_suppressions(lines: list[str]) -> dict[int, set[str]]:
        out: dict[int, set[str]] = {}
        for i, line in enumerate(lines, start=1):
            m = _SUPPRESS_RE.search(line)
            if not m:
                continue
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            out.setdefault(i, set()).update(rules)
            if line.lstrip().startswith("#"):
                # A standalone pragma line also covers the next line.
                out.setdefault(i + 1, set()).update(rules)
        return out

    def suppressed(self, rule: str, line: int) -> bool:
        rules = self.suppressions.get(line)
        return rules is not None and (rule in rules or "all" in rules)


# -- registry ---------------------------------------------------------------------

_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.name:
        raise ValueError(f"rule class {cls.__name__} has no name")
    _REGISTRY[cls.name] = cls
    return cls


def all_rules() -> dict[str, type[Rule]]:
    """Every registered rule class, keyed by rule name."""
    from . import rules  # noqa: F401  -- importing registers the rules

    return dict(sorted(_REGISTRY.items()))


# -- runner -----------------------------------------------------------------------


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files: int = 0
    #: Files that could not be read or parsed: (path, message).
    errors: list[tuple[str, str]] = field(default_factory=list)

    @property
    def error_count(self) -> int:
        return sum(1 for f in self.findings if f.severity == "error")

    @property
    def warning_count(self) -> int:
        return sum(1 for f in self.findings if f.severity == "warning")

    def exit_code(self, strict: bool = False) -> int:
        if self.errors:
            return 2
        if self.error_count:
            return 1
        if strict and self.warning_count:
            return 1
        return 0


def discover_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for p in paths:
        p = Path(p)
        if p.is_dir():
            out.update(q for q in p.rglob("*.py"))
        else:
            out.add(p)
    return sorted(out)


def lint_paths(
    paths: Iterable[str | Path],
    rule_names: Optional[Iterable[str]] = None,
) -> LintResult:
    """Run the selected rules (default: all) over the given paths."""
    registry = all_rules()
    if rule_names is None:
        selected = list(registry)
    else:
        selected = list(rule_names)
        unknown = [r for r in selected if r not in registry]
        if unknown:
            raise KeyError(f"unknown rule(s): {', '.join(sorted(unknown))}")
    rules = [registry[name]() for name in selected]

    result = LintResult()
    contexts: dict[str, FileContext] = {}
    for path in discover_files(paths):
        try:
            ctx = FileContext(str(path), path.read_text())
        except (OSError, SyntaxError, ValueError) as e:
            result.errors.append((str(path), str(e)))
            continue
        contexts[ctx.path] = ctx
        result.files += 1
        for rule in rules:
            for finding in rule.check(ctx):
                _file(result, ctx, finding)
    for rule in rules:
        for finding in rule.finalize():
            ctx = contexts.get(finding.path)
            _file(result, ctx, finding)
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    result.suppressed.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return result


def _file(result: LintResult, ctx: Optional[FileContext], finding: Finding) -> None:
    if ctx is not None and ctx.suppressed(finding.rule, finding.line):
        result.suppressed.append(finding)
    else:
        result.findings.append(finding)
