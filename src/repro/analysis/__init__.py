"""reprolint: project-specific static analysis + runtime lock sanitizer.

The czar/worker concurrency layer (PR 2) juggles multiple locks, a
condition variable, hedged attempts, and refcounted result eviction --
exactly the shared-mutable-state regime where the paper's shared-nothing
design gets violated by accident, silently.  This package catches that
class of bug at CI time instead of under chaos seeds:

- :mod:`repro.analysis.lint` -- an AST-based static analyzer
  (``python -m repro.analysis.lint --strict src/``) with five
  project-specific rules: guarded-by, lock-order, deadline-threading,
  exception-swallow, and sql-template.  Findings are suppressed per
  line with ``# reprolint: disable=<rule> -- <reason>``.
- :mod:`repro.analysis.sanitizer` -- instrumented Lock/RLock wrappers
  that record per-thread acquisition order at runtime and raise on
  lock-order inversions.  Production code creates its locks through
  :func:`~repro.analysis.sanitizer.make_lock` and friends; setting
  ``REPRO_SANITIZE=1`` swaps in the instrumented wrappers so the chaos
  and resilience suites double as race-order tests.

This module deliberately imports nothing heavy: production code pulls
``repro.analysis.sanitizer`` on every import of the qserv layer, while
the linter machinery (AST rules, reporters) loads only when linting.
"""

from __future__ import annotations

__all__ = ["lint_paths", "all_rules", "Finding"]


def __getattr__(name):
    if name in __all__:
        from . import core

        return getattr(core, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
