"""Output formats for lint results: human text and machine JSON."""

from __future__ import annotations

import json

from .core import LintResult

__all__ = ["render_text", "render_json", "REPORTERS"]


def render_text(result: LintResult, *, verbose: bool = False) -> str:
    lines = []
    for f in result.findings:
        lines.append(
            f"{f.path}:{f.line}:{f.col}: {f.severity}: [{f.rule}] {f.message}"
        )
    for path, message in result.errors:
        lines.append(f"{path}:1:1: error: [parse] {message}")
    if verbose:
        for f in result.suppressed:
            lines.append(
                f"{f.path}:{f.line}:{f.col}: suppressed: [{f.rule}] {f.message}"
            )
    lines.append(
        f"{result.files} files checked: {result.error_count} error(s), "
        f"{result.warning_count} warning(s), {len(result.suppressed)} suppressed"
    )
    return "\n".join(lines)


def render_json(result: LintResult, *, verbose: bool = False) -> str:
    def encode(f):
        return {
            "rule": f.rule,
            "path": f.path,
            "line": f.line,
            "col": f.col,
            "severity": f.severity,
            "message": f.message,
        }

    payload = {
        "files_checked": result.files,
        "findings": [encode(f) for f in result.findings],
        "parse_errors": [
            {"path": path, "message": message} for path, message in result.errors
        ],
        "suppressed": [encode(f) for f in result.suppressed],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


REPORTERS = {"text": render_text, "json": render_json}
