"""Command-line entry point: ``python -m repro.analysis.lint [paths]``.

Exit codes: 0 clean, 1 findings (errors, or warnings under ``--strict``),
2 when a file could not be read or parsed.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

from .core import all_rules, lint_paths
from .reporters import REPORTERS

__all__ = ["main", "changed_files"]


def changed_files(base_ref: str, paths: list[str]) -> list[str]:
    """Python files under ``paths`` differing from ``base_ref`` (or untracked).

    The fast pre-commit path: ``reprolint --changed-only`` lints only
    what the commit touches, while CI keeps the full ``--strict src/``
    sweep.  Deleted files are excluded; raises ``RuntimeError`` when git
    cannot produce a diff (not a repository, unknown ref).
    """
    diff = subprocess.run(
        ["git", "diff", "--name-only", "--diff-filter=d", base_ref, "--", *paths],
        capture_output=True, text=True,
    )
    if diff.returncode != 0:
        raise RuntimeError(diff.stderr.strip() or "git diff failed")
    untracked = subprocess.run(
        ["git", "ls-files", "--others", "--exclude-standard", "--", *paths],
        capture_output=True, text=True,
    )
    names = set(diff.stdout.splitlines())
    if untracked.returncode == 0:
        names.update(untracked.stdout.splitlines())
    return sorted(
        name for name in names
        if name.endswith(".py") and Path(name).exists()
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="reprolint: project-specific static analysis for the "
        "czar/worker concurrency layer",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="treat warnings as failures",
    )
    parser.add_argument(
        "--format", choices=sorted(REPORTERS), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated subset of rules to run (default: all)",
    )
    parser.add_argument(
        "--changed-only", action="store_true",
        help="lint only files that differ from --base-ref (plus "
        "untracked files) -- the fast pre-commit path",
    )
    parser.add_argument(
        "--base-ref", default="HEAD",
        help="git ref --changed-only diffs against (default: HEAD)",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="also show suppressed findings",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for name, cls in all_rules().items():
            print(f"{name:20s} [{cls.severity:7s}] {cls.description}")
        return 0

    paths = args.paths
    if args.changed_only:
        try:
            paths = changed_files(args.base_ref, args.paths)
        except RuntimeError as e:
            print(f"error: --changed-only: {e}", file=sys.stderr)
            return 2
        if not paths:
            print(f"no python files changed vs {args.base_ref}")
            return 0

    rule_names = None
    if args.rules:
        rule_names = [r.strip() for r in args.rules.split(",") if r.strip()]
    try:
        result = lint_paths(paths, rule_names)
    except KeyError as e:
        print(f"error: {e.args[0]}", file=sys.stderr)
        return 2

    print(REPORTERS[args.format](result, verbose=args.verbose))
    return result.exit_code(strict=args.strict)


if __name__ == "__main__":
    sys.exit(main())
