"""Command-line entry point: ``python -m repro.analysis.lint [paths]``.

Exit codes: 0 clean, 1 findings (errors, or warnings under ``--strict``),
2 when a file could not be read or parsed.
"""

from __future__ import annotations

import argparse
import sys

from .core import all_rules, lint_paths
from .reporters import REPORTERS

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="reprolint: project-specific static analysis for the "
        "czar/worker concurrency layer",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="treat warnings as failures",
    )
    parser.add_argument(
        "--format", choices=sorted(REPORTERS), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated subset of rules to run (default: all)",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="also show suppressed findings",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for name, cls in all_rules().items():
            print(f"{name:20s} [{cls.severity:7s}] {cls.description}")
        return 0

    rule_names = None
    if args.rules:
        rule_names = [r.strip() for r in args.rules.split(",") if r.strip()]
    try:
        result = lint_paths(args.paths, rule_names)
    except KeyError as e:
        print(f"error: {e.args[0]}", file=sys.stderr)
        return 2

    print(REPORTERS[args.format](result, verbose=args.verbose))
    return result.exit_code(strict=args.strict)


if __name__ == "__main__":
    sys.exit(main())
