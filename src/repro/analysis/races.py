"""Happens-before data-race detector: vector clocks over tracked state.

The lock-order sanitizer (:mod:`repro.analysis.sanitizer`) catches
*deadlocks*; it says nothing about two threads touching the same
attribute without any ordering at all -- the PR 7 review races
(submit-vs-kill on the job journal, admission quota double-grant) were
exactly that shape.  This module adds the data half:

- a **vector-clock engine** with the FastTrack epoch optimization: each
  thread carries a clock vector, each tracked memory cell remembers its
  last write as a cheap ``(tid, clock)`` epoch (promoting reads to a
  full vector only when they become genuinely shared), and an access
  that is not ordered *happens-before* the previous conflicting access
  is a data race -- regardless of whether this particular run
  interleaved badly;
- **happens-before edges** from every synchronization primitive the
  project actually uses: lock release -> next acquire (fed by the
  sanitizer's instrumented ``make_lock``/``make_rlock``/
  ``make_condition`` wrappers), ``Thread.start`` -> child,
  child -> ``Thread.join``, ``Future.set_result``/``set_exception`` ->
  ``Future.result``/``exception``, and ``ThreadPoolExecutor.submit`` ->
  task body (the stdlib is patched while the detector is enabled);
- a **tracked-attribute protocol**: decorate a class with
  ``@track_shared("_results", "_errors")`` (or call
  ``track(obj, "attr")``) and, while the detector is enabled, those
  attributes are wrapped in read/write-recording descriptors.  Plain
  ``dict``/``OrderedDict``/``set``/``list``/``deque`` values are
  additionally wrapped in recording containers, because most real races
  here are on *container contents* (``self._results[h] = ...``), which
  an attribute descriptor alone would see as a read.

Modes (``REPRO_SANITIZE`` environment variable, or :func:`enable`):

- ``race``        -- raise :class:`DataRaceViolation` at the racing access;
- ``race:report`` -- log the violation, collect it in :func:`race_report`,
                     and keep going (used for overhead measurement and
                     whole-suite sweeps).

Both modes also force the lock factories into their sanitized forms, so
the detector always sees acquire/release edges.  When the detector is
off, ``@track_shared`` only appends to a registry list and the
descriptors are not installed -- zero steady-state overhead.

Caveats (documented, deliberate): tracked container attributes must
*own* their container (the wrapper is installed by re-binding the
attribute, so an outside alias created before tracking would bypass
it); and like every happens-before detector, a lock edge that merely
*happened* to order two accesses this run hides the race -- the
deterministic scheduler in :mod:`repro.analysis.sched` exists to explore
the other interleavings.
"""

from __future__ import annotations

import logging
import os
import sys
import threading
import weakref
from collections import OrderedDict, deque
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Optional

from . import sanitizer as _sanitizer

__all__ = [
    "DataRaceViolation",
    "Access",
    "RaceEngine",
    "track",
    "track_shared",
    "enabled",
    "report_mode",
    "enable",
    "disable",
    "reset",
    "race_report",
]

log = logging.getLogger("repro.races")

_THIS_FILE = __file__
_MISSING = object()

#: The active engine (None when the detector is off).
_ENGINE: Optional["RaceEngine"] = None

#: Set by :mod:`repro.analysis.sched` while a Scheduler is active.
_SCHEDULER = None


def _sched_yield() -> None:
    s = _SCHEDULER
    if s is not None:
        s.yield_point()


# -- reporting ---------------------------------------------------------------------


def _capture_stack(limit: int = 6) -> tuple[tuple[str, int, str], ...]:
    """A cheap ``(file, line, function)`` stack, detector frames skipped."""
    out: list[tuple[str, int, str]] = []
    frame = sys._getframe(1)
    while frame is not None and len(out) < limit:
        code = frame.f_code
        if code.co_filename != _THIS_FILE:
            out.append((code.co_filename, frame.f_lineno, code.co_name))
        frame = frame.f_back
    return tuple(out)


class Access:
    """One recorded read or write: who, where, and under what."""

    __slots__ = ("thread", "tid", "clock", "stack", "locks", "vc")

    def __init__(self, thread, tid, clock, stack, locks, vc):
        self.thread = thread
        self.tid = tid
        self.clock = clock
        self.stack = stack
        self.locks = locks
        self.vc = vc

    def describe(self) -> str:
        held = ", ".join(self.locks) if self.locks else "no locks"
        lines = [
            f"thread {self.thread!r} (tid {self.tid}, clock {self.clock}) "
            f"holding [{held}], vc {dict(sorted(self.vc.items()))}"
        ]
        for filename, lineno, func in self.stack:
            lines.append(f"      {filename}:{lineno} in {func}")
        return "\n".join(lines)


class DataRaceViolation(RuntimeError):
    """Two accesses to the same tracked cell with no happens-before order."""

    def __init__(self, label: str, kind: str, prior: Access, current: Access):
        self.label = label
        self.kind = kind
        self.prior = prior
        self.current = current
        super().__init__(
            f"data race ({kind}) on {label!r}:\n"
            f"  prior access by {prior.describe()}\n"
            f"  racing access by {current.describe()}"
        )


# -- vector-clock engine -----------------------------------------------------------


def _join(dst: dict, src: dict) -> bool:
    changed = False
    for tid, clk in src.items():
        if clk > dst.get(tid, 0):
            dst[tid] = clk
            changed = True
    return changed


class _ThreadState:
    #: ``gen`` counts external joins into ``vc`` (lock acquires, thread
    #: joins, future results).  Between two moments with the same gen,
    #: only the thread's own component can have advanced -- the lock
    #: hooks use that to skip full vector-clock joins.
    __slots__ = ("tid", "vc", "name", "gen")

    def __init__(self, tid: int, vc: dict, name: str):
        self.tid = tid
        self.vc = vc
        self.name = name
        self.gen = 0


class _LockVC:
    """A lock's vector clock plus release-ownership fast-path state."""

    __slots__ = ("vc", "owner_tid", "owner_gen")

    def __init__(self):
        self.vc: dict = {}
        self.owner_tid = -1
        self.owner_gen = -1


class _Cell:
    """FastTrack per-variable state: write epoch, read epoch or read VC."""

    __slots__ = (
        "gen", "label",
        "write", "write_access",
        "read", "read_access", "read_vc",
    )

    def __init__(self, label: str):
        self.label = label
        self.gen = None
        self.write = None          # (tid, clock) epoch of the last write
        self.write_access = None
        self.read = None           # exclusive read epoch ...
        self.read_access = None
        self.read_vc = None        # ... or shared reads: {tid: (clock, Access)}

    def clear(self, gen) -> None:
        self.gen = gen
        self.write = self.write_access = None
        self.read = self.read_access = None
        self.read_vc = None


class RaceEngine:
    """Global detector state: thread clocks, lock clocks, violations."""

    def __init__(self, report_only: bool = False):
        # A plain leaf lock: taken inside sanitized locks, calls out to
        # nothing that could acquire another lock.
        self._mu = threading.Lock()
        self.report_only = report_only
        self.reports: list[DataRaceViolation] = []
        self._seen: set = set()
        self._next_tid = 1
        self._local = threading.local()
        self._by_thread: "weakref.WeakKeyDictionary[threading.Thread, _ThreadState]" = (
            weakref.WeakKeyDictionary()
        )
        self._lock_vcs: "weakref.WeakKeyDictionary[Any, dict]" = (
            weakref.WeakKeyDictionary()
        )

    # -- thread registry ---------------------------------------------------------

    def _tstate(self) -> _ThreadState:
        st = getattr(self._local, "state", None)
        if st is None:
            thread = threading.current_thread()
            with self._mu:
                tid = self._next_tid
                self._next_tid += 1
                vc: dict = {}
                parent = getattr(thread, "_race_parent_vc", None)
                if parent is not None:
                    _join(vc, parent)
                vc[tid] = vc.get(tid, 0) + 1
                st = _ThreadState(tid, vc, thread.name)
                self._by_thread[thread] = st
            self._local.state = st
        return st

    @staticmethod
    def _hb(epoch: tuple, vc: dict) -> bool:
        """Did the access at ``epoch`` happen-before the thread at ``vc``?"""
        return epoch[1] <= vc.get(epoch[0], 0)

    def _access(self, st: _ThreadState) -> Access:
        return Access(
            thread=st.name,
            tid=st.tid,
            clock=st.vc[st.tid],
            stack=_capture_stack(),
            locks=tuple(_sanitizer.MONITOR.held()),
            vc=dict(st.vc),  # sorted lazily in describe()
        )

    # -- memory accesses ---------------------------------------------------------

    def record(self, cell: _Cell, is_write: bool) -> None:
        _sched_yield()
        st = self._tstate()
        # FastTrack same-epoch fast path: this thread already recorded
        # an equal-or-stronger access to this cell at its current clock,
        # so the outcome is identical -- skip the capture and the mutex.
        # Reading cell fields unlocked is benign: a stale miss just
        # falls through to the locked slow path.
        if cell.gen is self:
            epoch = (st.tid, st.vc[st.tid])
            if cell.write == epoch:
                return
            if not is_write:
                if cell.read == epoch:
                    return
                rvc = cell.read_vc
                if rvc is not None:
                    entry = rvc.get(st.tid)
                    if entry is not None and entry[0] == epoch[1]:
                        return
        prior: Optional[Access] = None
        kind = ""
        # The access snapshot (stack walk, lock set) is the expensive
        # part; build it before taking the mutex so concurrent threads
        # do not serialize on it.
        cur = self._access(st)
        with self._mu:
            if cell.gen is not self:
                cell.clear(self)
            vc = st.vc
            if is_write:
                if (
                    cell.write is not None
                    and cell.write[0] != st.tid
                    and not self._hb(cell.write, vc)
                ):
                    prior, kind = cell.write_access, "write-write"
                if (
                    prior is None
                    and cell.read is not None
                    and cell.read[0] != st.tid
                    and not self._hb(cell.read, vc)
                ):
                    prior, kind = cell.read_access, "read-write"
                if prior is None and cell.read_vc is not None:
                    for tid, (clk, access) in cell.read_vc.items():
                        if tid != st.tid and clk > vc.get(tid, 0):
                            prior, kind = access, "read-write"
                            break
                cell.write = (st.tid, vc[st.tid])
                cell.write_access = cur
                cell.read = cell.read_access = None
                cell.read_vc = None
            else:
                if (
                    cell.write is not None
                    and cell.write[0] != st.tid
                    and not self._hb(cell.write, vc)
                ):
                    prior, kind = cell.write_access, "write-read"
                if cell.read_vc is not None:
                    cell.read_vc[st.tid] = (vc[st.tid], cur)
                elif (
                    cell.read is None
                    or cell.read[0] == st.tid
                    or self._hb(cell.read, vc)
                ):
                    cell.read = (st.tid, vc[st.tid])
                    cell.read_access = cur
                else:
                    cell.read_vc = {
                        cell.read[0]: (cell.read[1], cell.read_access),
                        st.tid: (vc[st.tid], cur),
                    }
                    cell.read = cell.read_access = None
        if prior is not None:
            self._violate(cell.label, kind, prior, cur)

    def _violate(self, label: str, kind: str, prior: Access, current: Access) -> None:
        violation = DataRaceViolation(label, kind, prior, current)
        if not self.report_only:
            raise violation
        key = (
            label, kind,
            prior.stack[0] if prior.stack else None,
            current.stack[0] if current.stack else None,
        )
        with self._mu:
            if key in self._seen:
                return
            self._seen.add(key)
            self.reports.append(violation)
        log.warning("%s", violation)

    # -- happens-before edges ----------------------------------------------------

    # The lock's vector clock lives on the lock object itself, tagged
    # with its owning engine.  Both hooks run while the caller HOLDS the
    # lock (acquire joins after acquiring, release joins before
    # releasing), so the lock serializes every touch of its own clock --
    # no global mutex needed on this very hot path.  ``st.vc`` is only
    # ever mutated by its owning thread; cross-thread readers snapshot.

    def _lock_vc(self, lock: Any, create: bool):
        tagged = getattr(lock, "_race_vc", None)
        if tagged is not None and tagged[0] is self:
            return tagged[1]
        if not create:
            return None
        ls = _LockVC()
        try:
            lock._race_vc = (self, ls)
        except AttributeError:
            # No instance dict (e.g. a raw _thread.lock): fall back to
            # the shared side table under the engine mutex.
            with self._mu:
                ls = self._lock_vcs.setdefault(lock, _LockVC())
        return ls

    def lock_acquired(self, lock: Any) -> None:
        ls = self._lock_vc(lock, create=False)
        if ls is None and self._lock_vcs:
            with self._mu:
                ls = self._lock_vcs.get(lock)
        if ls is None:
            return
        st = self._tstate()
        # Ownership fast path: this thread was the last releaser and the
        # lock's clock never exceeds its releaser's, so there is nothing
        # new to learn -- skip the O(threads) join.
        if ls.owner_tid == st.tid:
            return
        if _join(st.vc, ls.vc):
            st.gen += 1  # reprolint: disable=guarded-by -- own-thread counter, never read cross-thread

    def lock_released(self, lock: Any) -> None:
        st = self._tstate()
        ls = self._lock_vc(lock, create=True)
        # Ownership fast path: since this thread's last release of this
        # lock it learned nothing external (gen unchanged), so only its
        # own component advanced -- one store instead of a full join.
        if ls.owner_tid == st.tid and ls.owner_gen == st.gen:
            ls.vc[st.tid] = st.vc[st.tid]
        else:
            _join(ls.vc, st.vc)
            ls.owner_tid = st.tid
            ls.owner_gen = st.gen
        st.vc[st.tid] += 1  # reprolint: disable=guarded-by -- own-thread clock; cross-thread readers snapshot under _mu

    def fork_snapshot(self) -> dict:
        """Snapshot the caller's clock for a release-style edge (start/submit)."""
        st = self._tstate()
        with self._mu:
            snap = dict(st.vc)
            st.vc[st.tid] += 1
        return snap

    def join_vc(self, vc: dict) -> None:
        st = self._tstate()
        with self._mu:
            if _join(st.vc, vc):
                st.gen += 1

    def join_thread(self, thread: threading.Thread) -> None:
        st = self._tstate()
        with self._mu:
            other = self._by_thread.get(thread)
            if other is not None and other is not st:
                # Snapshot: the joined thread may still be finishing its
                # own clock bumps; dict() is atomic under the GIL.
                if _join(st.vc, dict(other.vc)):
                    st.gen += 1


# -- tracked attributes ------------------------------------------------------------


class TrackedAttribute:
    """Data descriptor recording every read/write of one attribute.

    The value lives in the instance ``__dict__`` under a slot name; a
    value stored *before* the descriptor was installed (under the plain
    name) is migrated lazily on first access, and a plain class-level
    default (e.g. a dataclass field default) is served when the
    instance has no value at all.
    """

    def __init__(self, name: str, label: str, default=_MISSING):
        self.name = name
        self.label = label
        self.default = default
        self.slot = "__tracked_" + name
        self.cellslot = "__racecell_" + name
        #: Live instances whose value moved into the slot; uninstalling
        #: the descriptor must move it back or the attribute vanishes.
        #: Keyed by id() -- a WeakSet would reject unhashable instances
        #: (e.g. dataclasses with eq=True).
        self.instances: dict[int, weakref.ref] = {}

    def _remember(self, obj) -> None:
        key = id(obj)
        if key in self.instances:
            return
        gone = self.instances
        try:
            self.instances[key] = weakref.ref(
                obj, lambda _r, k=key: gone.pop(k, None)
            )
        # reprolint: disable=exception-swallow -- non-weakrefable instance: nothing to restore later
        except TypeError:
            pass

    def restore_instances(self) -> None:
        """Move slot values back under the plain name (pre-uninstall)."""
        for ref in list(self.instances.values()):
            obj = ref()
            if obj is None:
                continue
            d = obj.__dict__
            if self.slot in d:
                d[self.name] = d.pop(self.slot)
            d.pop(self.cellslot, None)
        self.instances.clear()

    def _cell(self, d: dict) -> _Cell:
        cell = d.get(self.cellslot)
        if cell is None:
            cell = d.setdefault(self.cellslot, _Cell(self.label))
        return cell

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        d = obj.__dict__
        value = d.get(self.slot, _MISSING)
        if value is _MISSING:
            if self.name in d:
                # Pre-install value migrating into the slot: wrap it so
                # container mutations record just like post-install sets.
                value = d.pop(self.name)
                if _ENGINE is not None:
                    value = _wrap_container(value, self.label)
                d[self.slot] = value
                self._remember(obj)
            elif self.default is not _MISSING:
                value = self.default
            else:
                raise AttributeError(self.name)
        engine = _ENGINE
        if engine is not None:
            engine.record(self._cell(d), False)
        return value

    def __set__(self, obj, value):
        d = obj.__dict__
        engine = _ENGINE
        if engine is not None:
            value = _wrap_container(value, self.label)
            engine.record(self._cell(d), True)
        if self.slot not in d:
            self._remember(obj)
        d[self.slot] = value

    def __delete__(self, obj):
        d = obj.__dict__
        engine = _ENGINE
        if engine is not None:
            engine.record(self._cell(d), True)
        d.pop(self.slot, None)


#: Classes that asked for tracking: [(cls, (attr, ...)), ...].
_REGISTERED: list[tuple[type, tuple[str, ...]]] = []
#: Currently installed descriptors: [(cls, name, saved_class_value), ...].
_INSTALLED: list[tuple[type, str, Any]] = []


def track_shared(*names: str):
    """Class decorator declaring attributes as shared, race-checked state.

    Free when the detector is off; under ``REPRO_SANITIZE=race`` (or
    after :func:`enable`) the named attributes are wrapped in recording
    descriptors.  The declaration is also consumed statically by the
    ``shared-mutation`` lint rule.
    """

    attrs = tuple(names)

    def deco(cls: type) -> type:
        _REGISTERED.append((cls, attrs))
        if _ENGINE is not None:
            _install_class(cls, attrs)
        return cls

    return deco


def track(obj, *names: str):
    """Imperatively track attributes on ``obj`` (or a class) by name."""
    cls = obj if isinstance(obj, type) else type(obj)
    attrs = tuple(names)
    _REGISTERED.append((cls, attrs))
    if _ENGINE is not None:
        _install_class(cls, attrs)
    return obj


def _install_class(cls: type, names: tuple[str, ...]) -> None:
    for name in names:
        existing = cls.__dict__.get(name, _MISSING)
        if isinstance(existing, TrackedAttribute):
            continue
        _INSTALLED.append((cls, name, existing))
        setattr(
            cls, name,
            TrackedAttribute(name, f"{cls.__name__}.{name}", default=existing),
        )


def _uninstall_all() -> None:
    while _INSTALLED:
        cls, name, saved = _INSTALLED.pop()
        desc = cls.__dict__.get(name)
        if isinstance(desc, TrackedAttribute):
            desc.restore_instances()
        if saved is _MISSING:
            try:
                delattr(cls, name)
            # reprolint: disable=exception-swallow -- already uninstalled: nothing to restore
            except AttributeError:
                pass
        else:
            setattr(cls, name, saved)


# -- recording containers ----------------------------------------------------------


def _reader(base: type, name: str):
    orig = getattr(base, name)

    def method(self, *args, **kwargs):
        engine = _ENGINE
        if engine is not None:
            engine.record(self._cell, False)
        return orig(self, *args, **kwargs)

    method.__name__ = name
    return method


def _writer(base: type, name: str):
    orig = getattr(base, name)

    def method(self, *args, **kwargs):
        engine = _ENGINE
        if engine is not None:
            engine.record(self._cell, True)
        return orig(self, *args, **kwargs)

    method.__name__ = name
    return method


_DICT_READS = ("__getitem__", "__contains__", "__len__", "__iter__", "get",
               "keys", "values", "items", "copy")
_DICT_WRITES = ("__setitem__", "__delitem__", "pop", "popitem", "clear",
                "update", "setdefault")
_SET_READS = ("__contains__", "__len__", "__iter__", "copy")
_SET_WRITES = ("add", "discard", "remove", "pop", "clear", "update",
               "difference_update", "intersection_update")
_LIST_READS = ("__getitem__", "__contains__", "__len__", "__iter__", "copy",
               "index", "count")
_LIST_WRITES = ("__setitem__", "__delitem__", "append", "extend", "insert",
                "pop", "remove", "clear", "sort", "reverse")
_DEQUE_READS = ("__getitem__", "__contains__", "__len__", "__iter__", "count")
_DEQUE_WRITES = ("__setitem__", "append", "appendleft", "extend", "extendleft",
                 "pop", "popleft", "remove", "clear", "rotate")


# NOTE: every proxy assigns ``_cell`` *before* the base ``__init__``:
# OrderedDict's C initializer populates a non-empty source through the
# subclass's (instrumented) ``__setitem__``, which needs the cell.


class _TrackedDict(dict):
    def __init__(self, value=(), label: str = ""):
        self._cell = _Cell(label + "{}")
        dict.__init__(self, value)


class _TrackedOrderedDict(OrderedDict):
    def __init__(self, value=(), label: str = ""):
        self._cell = _Cell(label + "{}")
        OrderedDict.__init__(self, value)


class _TrackedSet(set):
    def __init__(self, value=(), label: str = ""):
        self._cell = _Cell(label + "{}")
        set.__init__(self, value)


class _TrackedList(list):
    def __init__(self, value=(), label: str = ""):
        self._cell = _Cell(label + "[]")
        list.__init__(self, value)


class _TrackedDeque(deque):
    def __init__(self, value=(), label: str = ""):
        maxlen = value.maxlen if isinstance(value, deque) else None
        self._cell = _Cell(label + "[]")
        deque.__init__(self, value, maxlen)


def _instrument_container(proxy: type, base: type, reads, writes) -> None:
    for name in reads:
        setattr(proxy, name, _reader(base, name))
    for name in writes:
        setattr(proxy, name, _writer(base, name))


_instrument_container(_TrackedDict, dict, _DICT_READS, _DICT_WRITES)
_instrument_container(_TrackedOrderedDict, OrderedDict,
                      _DICT_READS, _DICT_WRITES + ("move_to_end",))
_instrument_container(_TrackedSet, set, _SET_READS, _SET_WRITES)
_instrument_container(_TrackedList, list, _LIST_READS, _LIST_WRITES)
_instrument_container(_TrackedDeque, deque, _DEQUE_READS, _DEQUE_WRITES)

_PROXIES = {
    dict: _TrackedDict,
    OrderedDict: _TrackedOrderedDict,
    set: _TrackedSet,
    list: _TrackedList,
    deque: _TrackedDeque,
}


def _wrap_container(value, label: str):
    proxy = _PROXIES.get(type(value))
    if proxy is None:
        return value
    return proxy(value, label)


# -- stdlib happens-before patches -------------------------------------------------

_ORIG: dict[str, Any] = {}


def _join_future(future: Future) -> None:
    engine = _ENGINE
    if engine is None:
        return
    vc = getattr(future, "_race_vc", None)
    if vc is not None:
        engine.join_vc(vc)


def _install_patches() -> None:
    if _ORIG:
        return
    _ORIG["thread_start"] = threading.Thread.start
    _ORIG["thread_join"] = threading.Thread.join
    _ORIG["future_set_result"] = Future.set_result
    _ORIG["future_set_exception"] = Future.set_exception
    _ORIG["future_result"] = Future.result
    _ORIG["future_exception"] = Future.exception
    _ORIG["executor_submit"] = ThreadPoolExecutor.submit

    def start(thread):
        engine = _ENGINE
        if engine is not None:
            thread._race_parent_vc = engine.fork_snapshot()
        return _ORIG["thread_start"](thread)

    def join(thread, timeout=None):
        _ORIG["thread_join"](thread, timeout)
        engine = _ENGINE
        if engine is not None and not thread.is_alive():
            engine.join_thread(thread)

    def set_result(future, result):
        engine = _ENGINE
        if engine is not None:
            future._race_vc = engine.fork_snapshot()
        return _ORIG["future_set_result"](future, result)

    def set_exception(future, exc):
        engine = _ENGINE
        if engine is not None:
            future._race_vc = engine.fork_snapshot()
        return _ORIG["future_set_exception"](future, exc)

    def result(future, timeout=None):
        try:
            return _ORIG["future_result"](future, timeout)
        finally:
            _join_future(future)

    def exception(future, timeout=None):
        try:
            return _ORIG["future_exception"](future, timeout)
        finally:
            _join_future(future)

    def submit(pool, fn, /, *args, **kwargs):
        engine = _ENGINE
        if engine is None:
            return _ORIG["executor_submit"](pool, fn, *args, **kwargs)
        snap = engine.fork_snapshot()

        def task(*a, **k):
            live = _ENGINE
            if live is not None:
                live.join_vc(snap)
            return fn(*a, **k)

        task.__name__ = getattr(fn, "__name__", "task")
        return _ORIG["executor_submit"](pool, task, *args, **kwargs)

    threading.Thread.start = start
    threading.Thread.join = join
    Future.set_result = set_result
    Future.set_exception = set_exception
    Future.result = result
    Future.exception = exception
    ThreadPoolExecutor.submit = submit


def _uninstall_patches() -> None:
    if not _ORIG:
        return
    threading.Thread.start = _ORIG.pop("thread_start")
    threading.Thread.join = _ORIG.pop("thread_join")
    Future.set_result = _ORIG.pop("future_set_result")
    Future.set_exception = _ORIG.pop("future_set_exception")
    Future.result = _ORIG.pop("future_result")
    Future.exception = _ORIG.pop("future_exception")
    ThreadPoolExecutor.submit = _ORIG.pop("executor_submit")


# -- lifecycle ---------------------------------------------------------------------


def enabled() -> bool:
    """Is the race detector currently recording accesses?"""
    return _ENGINE is not None


def report_mode() -> bool:
    """True when violations are collected instead of raised."""
    return _ENGINE is not None and _ENGINE.report_only


def enable(report: bool = False) -> None:
    """Turn the detector on: install descriptors and stdlib HB patches."""
    global _ENGINE
    _ENGINE = RaceEngine(report_only=report)
    for cls, names in list(_REGISTERED):
        _install_class(cls, names)
    _install_patches()
    _sanitizer._RACE_ENGINE = _ENGINE


def disable() -> None:
    """Turn the detector off and remove all instrumentation."""
    global _ENGINE
    _ENGINE = None
    _sanitizer._RACE_ENGINE = None
    _uninstall_all()
    _uninstall_patches()


def reset() -> None:
    """Fresh engine state (between tests); instrumentation stays installed."""
    global _ENGINE
    if _ENGINE is not None:
        _ENGINE = RaceEngine(report_only=_ENGINE.report_only)
        _sanitizer._RACE_ENGINE = _ENGINE


def race_report() -> list[DataRaceViolation]:
    """Violations collected so far (report mode; empty in raise mode)."""
    if _ENGINE is None:
        return []
    with _ENGINE._mu:
        return list(_ENGINE.reports)
