"""Per-server in-memory file store with explicit file transactions.

Xrootd exposes files through open/read-or-write/close transactions, and
Qserv deliberately uses nothing richer than that.  The store is
thread-safe: worker pools and the master's dispatch loop touch it from
multiple threads.
"""

from __future__ import annotations

import threading

from ..analysis.sanitizer import make_lock

__all__ = ["FileSystem", "FileSystemError", "FileHandle"]


class FileSystemError(OSError):
    """Missing files, double closes, mode violations."""


class FileHandle:
    """One open file transaction; write-only or read-only."""

    def __init__(self, fs: "FileSystem", path: str, mode: str):
        if mode not in ("r", "w"):
            raise FileSystemError(f"bad mode {mode!r}: use 'r' or 'w'")
        self._fs = fs
        self.path = path
        self.mode = mode
        self._closed = False
        self._write_buffer: list[bytes] = []
        self._read_pos = 0
        if mode == "r":
            self._data = fs._read_all(path)

    def write(self, data: bytes) -> int:
        self._check_open()
        if self.mode != "w":
            raise FileSystemError(f"{self.path}: not open for writing")
        if isinstance(data, str):
            data = data.encode()
        self._write_buffer.append(bytes(data))
        return len(data)

    def read(self, size: int = -1) -> bytes:
        self._check_open()
        if self.mode != "r":
            raise FileSystemError(f"{self.path}: not open for reading")
        if size < 0:
            out = self._data[self._read_pos :]
            self._read_pos = len(self._data)
        else:
            out = self._data[self._read_pos : self._read_pos + size]
            self._read_pos += len(out)
        return out

    def close(self) -> None:
        """End the transaction; a write becomes visible atomically here."""
        self._check_open()
        self._closed = True
        if self.mode == "w":
            self._fs._commit(self.path, b"".join(self._write_buffer))

    def _check_open(self):
        if self._closed:
            raise FileSystemError(f"{self.path}: handle is closed")

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        if not self._closed:
            self.close()
        return False


class FileSystem:
    """A flat, thread-safe path -> bytes store."""

    def __init__(self):
        self._files: dict[str, bytes] = {}
        self._lock = make_lock("FileSystem._lock")

    def open(self, path: str, mode: str) -> FileHandle:
        return FileHandle(self, path, mode)

    def exists(self, path: str) -> bool:
        with self._lock:
            return path in self._files

    def unlink(self, path: str) -> None:
        with self._lock:
            if path not in self._files:
                raise FileSystemError(f"no such file {path!r}")
            del self._files[path]

    def listdir(self, prefix: str = "/") -> list[str]:
        with self._lock:
            return sorted(p for p in self._files if p.startswith(prefix))

    def size(self, path: str) -> int:
        with self._lock:
            if path not in self._files:
                raise FileSystemError(f"no such file {path!r}")
            return len(self._files[path])

    def total_bytes(self) -> int:
        with self._lock:
            return sum(len(v) for v in self._files.values())

    # -- handle callbacks ------------------------------------------------------

    def _read_all(self, path: str) -> bytes:
        with self._lock:
            if path not in self._files:
                raise FileSystemError(f"no such file {path!r}")
            return self._files[path]

    def _commit(self, path: str, data: bytes) -> None:
        with self._lock:
            self._files[path] = data
