"""The self-healing data plane: re-replication and integrity scrubbing.

The resilience layer (retries, hedging, health tracking) keeps *queries*
alive through failures, but the data itself stays degraded: a dead
worker's chunks run on fewer replicas forever, and a corrupted replica
keeps serving wrong bytes until a czar happens to notice.  This module
closes both loops:

- :class:`ChunkChecksums` records a reference digest per physical chunk
  table at ingest time (the digest of its binary wire encoding, which
  is identical across replicas by construction);
- :class:`RepairManager` watches for under-replicated chunks -- via the
  health tracker's breaker-open notifications, the czar's dispatch
  failures, or an explicit scan -- and copies chunk tables from a
  surviving replica to a healthy server over the ordinary ``/chunk/``
  file protocol, verifying every copy by read-back digest;
- :class:`IntegrityScrubber` re-reads replicas in the background,
  compares them against the reference (or quorum) digest, quarantines
  mismatches through the redirector's :class:`~.health.PathQuarantine`,
  and asks the repair manager to heal the bad copy in place.

Repair traffic rides the same ``open``/``read``/``write``/``close``
transactions as dispatch, so a :class:`~.faults.FaultPlan` attached to
a server faults repair copies exactly like queries -- which is how the
chaos tests exercise repairs that crash or corrupt mid-copy.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from ..analysis.sanitizer import make_lock
from ..obs import events as obs_events
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from .filesystem import FileSystemError
from .protocol import QUERY_PREFIX, chunk_path, manifest_path, query_path

__all__ = [
    "ChunkChecksums",
    "RepairManager",
    "RepairError",
    "IntegrityScrubber",
    "ScrubReport",
    "table_digest",
]


def table_digest(data: bytes) -> str:
    """The content digest of one chunk table's wire bytes (32 hex chars)."""
    return hashlib.md5(data).hexdigest()


class ChunkChecksums:
    """Reference digests of physical chunk tables, recorded at ingest.

    Replicas of a chunk table are byte-identical in the wire encoding
    (same name, same columns, same rows), so one digest per *table
    name* suffices for every copy.  The loader records digests as it
    installs tables; the scrubber and repair manager verify against
    them.  Tables without a recorded digest fall back to quorum
    comparison across replicas.
    """

    def __init__(self):
        self._lock = make_lock("ChunkChecksums._lock")
        self._digests: dict[str, str] = {}

    def record(self, table_name: str, digest: str) -> None:
        with self._lock:
            self._digests[table_name] = digest

    def record_bytes(self, table_name: str, data: bytes) -> str:
        """Record (and return) the digest of ``data`` for ``table_name``."""
        digest = table_digest(data)
        self.record(table_name, digest)
        return digest

    def expected(self, table_name: str) -> Optional[str]:
        with self._lock:
            return self._digests.get(table_name)

    def __len__(self):
        with self._lock:
            return len(self._digests)

    def __repr__(self):
        return f"ChunkChecksums(tables={len(self)})"


class RepairError(FileSystemError):
    """A repair copy could not be completed (no source, or a bad dest)."""


def _read_all(server, path: str) -> bytes:
    with server.open(path, "r") as handle:
        return handle.read()


class RepairManager:
    """Detects and repairs under-replicated chunks.

    Parameters
    ----------
    redirector:
        The cluster's redirector (server set, exports, quarantine).
    placement:
        The chunk-to-node placement; its ``effective_replication`` is
        the target copy count, and successful copies are recorded back
        into it via :meth:`~repro.partition.Placement.add_replica`.
    checksums:
        Reference digests for copy verification; optional (without it,
        a copy is verified against the digest of the source bytes).
    health:
        Optional :class:`~.health.HealthTracker`; subscribe with
        ``health.add_listener(manager.on_breaker)`` to mark the cluster
        dirty when a breaker opens.
    copy_attempts:
        Write-verify retries per table before a destination is given
        up on (a flaky destination disk gets this many chances).
    throttle:
        Seconds slept between chunk-table copies, bounding how hard
        background repair hits the fabric.  0 (default) for tests.
    """

    def __init__(
        self,
        redirector,
        placement,
        checksums: Optional[ChunkChecksums] = None,
        health=None,
        copy_attempts: int = 3,
        throttle: float = 0.0,
    ):
        if copy_attempts < 1:
            raise ValueError("copy_attempts must be >= 1")
        self.redirector = redirector
        self.placement = placement
        self.checksums = checksums
        self.health = health
        self.copy_attempts = copy_attempts
        self.throttle = throttle
        self._lock = make_lock("RepairManager._lock")
        # Chunk ids with a repair in flight: concurrent ensure_chunk
        # calls (czar dispatch threads) dedupe here instead of racing
        # duplicate copies.  Idempotent either way -- installs
        # overwrite -- but the dedupe keeps repair traffic bounded.
        self._inflight: set[int] = set()
        # Set when a breaker opens / a scan is requested; the
        # background thread (when running) wakes on it.
        self._dirty = threading.Event()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.metrics = obs_metrics.Registry(parent=obs_metrics.REGISTRY)

    # -- observation --------------------------------------------------------------

    def exporters(self, chunk_id: int) -> list:
        """Routable, non-quarantined servers currently exporting the chunk."""
        path = query_path(chunk_id)
        return [
            s
            for s in self.redirector.servers()
            if s.routable
            and s.serves(path)
            and not self.redirector.quarantine.blocked(s.name, path)
        ]

    def under_replicated(self) -> dict[int, tuple[int, int]]:
        """``{chunk_id: (have, want)}`` for every chunk below target."""
        want = self.placement.effective_replication
        out: dict[int, tuple[int, int]] = {}
        for cid in self.placement.chunk_ids:
            have = len(self.exporters(cid))
            if have < want:
                out[cid] = (have, want)
        return out

    # -- triggers -----------------------------------------------------------------

    def on_breaker(self, server_name: str, transition: str) -> None:
        """Health-tracker listener: a breaker opening marks us dirty."""
        if transition == "open":
            obs_events.emit("repair_scan_requested", server=server_name)
            self._dirty.set()

    def ensure_chunk(self, chunk_id: int) -> bool:
        """Bring one chunk back to target replication if it is below it.

        The czar calls this when a chunk dispatch fails retryably: the
        failure is evidence a replica just died, so repair starts *now*
        instead of waiting for the next background scan.  Returns True
        when at least one copy was made; False when the chunk was
        already at target, another repair was in flight, or no copy was
        possible (which the caller must tolerate -- repair is advisory,
        the retry loop still decides the query's fate).
        """
        cid = int(chunk_id)
        with self._lock:
            if cid in self._inflight:
                return False
            self._inflight.add(cid)
        try:
            return len(self.repair_chunk(cid)) > 0
        finally:
            with self._lock:
                self._inflight.discard(cid)

    # -- repair -------------------------------------------------------------------

    def repair_chunk(self, chunk_id: int, exclude=()) -> list[str]:
        """Copy ``chunk_id`` to healthy servers until it meets target.

        ``exclude`` names servers that must not count as replicas nor
        receive copies (decommission excludes the leaving node).
        Returns the names of servers that received a verified copy;
        empty when the chunk was already at target or nothing could be
        done (no live source, no eligible destination).
        """
        cid = int(chunk_id)
        exclude = set(exclude)
        want = min(
            self.placement.effective_replication,
            max(len(self.placement.nodes) - len(exclude), 1),
        )
        copied: list[str] = []
        # One destination per pass; re-evaluate exporters after each
        # copy so a failed destination does not stall the loop.
        for _ in range(want):
            # A fresh copy exports the path, so it counts here on the
            # next iteration -- no separate tally needed.
            current = [s for s in self.exporters(cid) if s.name not in exclude]
            if len(current) >= want:
                break
            dest = self._pick_destination(cid, exclude | {s.name for s in current})
            if dest is None:
                obs_events.emit("repair_stalled", chunk=cid, reason="no destination")
                break
            if not self._copy_chunk(cid, dest, sources=current):
                exclude.add(dest.name)  # this destination is not working out
                continue
            copied.append(dest.name)
        return copied

    def repair_all(self) -> int:
        """One full convergence pass; returns the number of copies made."""
        total = 0
        degraded = self.under_replicated()
        if degraded:
            obs_events.emit("repair_scan", degraded=len(degraded))
        for cid in sorted(degraded):
            with self._lock:
                if cid in self._inflight:
                    continue
                self._inflight.add(cid)
            try:
                total += len(self.repair_chunk(cid))
            finally:
                with self._lock:
                    self._inflight.discard(cid)
        return total

    def populate(self, node_name: str) -> int:
        """Materialize every chunk the placement assigns to ``node_name``.

        The join path: after ``placement.add_node`` hands chunks to a
        fresh (empty) server, this copies them in and exports their
        dispatch paths.  Returns the number of chunks copied.
        """
        dest = self.redirector.server(node_name)
        done = 0
        for cid in self.placement.chunks_hosted_by(node_name):
            if dest.serves(query_path(cid)):
                continue
            sources = [s for s in self.exporters(cid) if s.name != node_name]
            if self._copy_chunk(cid, dest, sources=sources):
                done += 1
        return done

    def trim_chunk(self, chunk_id: int) -> list[str]:
        """Drop excess physical copies the placement no longer lists.

        Rebalancing (``placement.add_node``) moves a chunk's ownership
        without deleting the donor's bytes; once the new owner's copy
        is live, the stale one is garbage.  Only copies *above* the
        replication target and *outside* the placement's owner list are
        dropped -- trimming never reduces availability below target.
        Returns the names of servers a copy was removed from.
        """
        cid = int(chunk_id)
        path = query_path(cid)
        owners = set(self.placement.replicas(cid))
        want = self.placement.effective_replication
        removed: list[str] = []
        for server in sorted(self.redirector.servers(), key=lambda s: s.name):
            if len(self.exporters(cid)) <= want:
                break
            if not server.serves(path) or server.name in owners:
                continue
            server.unexport(path)
            self.redirector.invalidate(path)
            plugin = getattr(server, "plugin", None)
            if plugin is not None and hasattr(plugin, "chunk_tables"):
                for table_name in plugin.chunk_tables(cid):
                    plugin.db.drop_table(table_name, if_exists=True)
            removed.append(server.name)
            self.metrics.counter("repair.trims").add(1)
            obs_events.emit("repair_trim", chunk=cid, server=server.name)
        return removed

    def trim_excess(self) -> int:
        """Trim every over-replicated chunk; returns copies removed."""
        return sum(len(self.trim_chunk(cid)) for cid in self.placement.chunk_ids)

    def heal_replica(self, chunk_id: int, server_name: str) -> bool:
        """Overwrite one known-bad replica with verified-clean content.

        The scrubber's repair hook: the copy lands on the quarantined
        server, is read back and digest-verified, and only then is the
        quarantine lifted.  Returns True on success.
        """
        cid = int(chunk_id)
        dest = self.redirector.server(server_name)
        sources = [s for s in self.exporters(cid) if s.name != server_name]
        if not self._copy_chunk(cid, dest, sources=sources):
            return False
        self.redirector.quarantine.clear(server_name, query_path(cid))
        return True

    # -- the copy itself ----------------------------------------------------------

    def _pick_destination(self, chunk_id: int, exclude: set):
        """The best server to receive a new copy of ``chunk_id``.

        Prefers nodes the placement already lists as owners (a joined
        node waiting for its data); otherwise the routable node hosting
        the fewest chunks, name-tie-broken, for deterministic balance.
        """
        path = query_path(chunk_id)
        candidates = [
            s
            for s in self.redirector.servers()
            if s.routable and not s.serves(path) and s.name not in exclude
        ]
        if not candidates:
            return None
        owners = set(self.placement.replicas(chunk_id))
        return min(
            candidates,
            key=lambda s: (
                s.name not in owners,
                sum(1 for p in s.exports() if p.startswith(QUERY_PREFIX)),
                s.name,
            ),
        )

    def _copy_chunk(self, chunk_id: int, dest, sources) -> bool:
        """Copy every table of one chunk from a live source to ``dest``.

        Verified end to end: source bytes are checked against the
        recorded digest (a corrupt source is quarantined and the next
        source tried), and each table written to ``dest`` is read back
        and digest-compared, retrying up to ``copy_attempts`` times --
        so a fault that corrupts the landing bytes converges to a clean
        copy instead of silently propagating damage.
        """
        cid = int(chunk_id)
        t0 = time.perf_counter()
        with obs_trace.span("repair.copy", track="repair", chunk=cid, dest=dest.name):
            for source in sorted(sources, key=lambda s: s.name):
                try:
                    tables = self._read_source(cid, source)
                except FileSystemError as e:
                    obs_events.emit(
                        "repair_source_failed",
                        chunk=cid,
                        source=source.name,
                        error=str(e),
                    )
                    continue
                if tables is None:
                    continue  # source content failed verification
                try:
                    nbytes = self._install(cid, dest, tables)
                except FileSystemError as e:
                    obs_events.emit(
                        "repair_failed", chunk=cid, dest=dest.name, error=str(e)
                    )
                    self.metrics.counter("repair.copy.failures").add(1)
                    return False
                self.placement.add_replica(cid, dest.name)
                dest.export(query_path(cid))
                elapsed = time.perf_counter() - t0
                self.metrics.counter("repair.copies").add(1)
                self.metrics.counter("repair.bytes").add(nbytes)
                self.metrics.histogram("repair.copy.seconds").observe(elapsed)
                obs_events.emit(
                    "repair_copy",
                    chunk=cid,
                    source=source.name,
                    dest=dest.name,
                    tables=len(tables),
                    bytes=nbytes,
                )
                if self.throttle:
                    time.sleep(self.throttle)
                return True
        obs_events.emit("repair_stalled", chunk=cid, reason="no live source")
        self.metrics.counter("repair.copy.failures").add(1)
        return False

    def _read_source(self, chunk_id: int, source):
        """``{table_name: (bytes, digest)}`` from one source, verified.

        None when the source served content that fails its recorded
        digest -- that replica is quarantined on the spot (scrubbing by
        side effect) so the caller moves on to the next source.
        """
        manifest = _read_all(source, manifest_path(chunk_id)).decode()
        tables: dict[str, tuple[bytes, str]] = {}
        for table_name in manifest.splitlines():
            data = _read_all(source, chunk_path(table_name))
            digest = table_digest(data)
            expected = (
                self.checksums.expected(table_name) if self.checksums else None
            )
            if expected is not None and digest != expected:
                self.redirector.quarantine.quarantine(
                    source.name, query_path(chunk_id)
                )
                obs_events.emit(
                    "repair_source_corrupt",
                    chunk=chunk_id,
                    source=source.name,
                    table=table_name,
                )
                return None
            tables[table_name] = (data, expected or digest)
        return tables

    def _install(self, chunk_id: int, dest, tables) -> int:
        """Write + read-back-verify every table on ``dest``; total bytes.

        Raises :class:`RepairError` when a table still verifies wrong
        after ``copy_attempts`` write attempts, and lets the fabric's
        :class:`FileSystemError` propagate when ``dest`` dies mid-copy.
        """
        nbytes = 0
        for table_name, (data, digest) in sorted(tables.items()):
            for attempt in range(self.copy_attempts):
                try:
                    with dest.open(chunk_path(table_name), "w") as handle:
                        handle.write(data)
                    landed = table_digest(_read_all(dest, chunk_path(table_name)))
                except FileSystemError:
                    if not dest.up:
                        raise  # the destination died mid-copy
                    # The transaction failed but the server lives: the
                    # payload landed damaged (e.g. refused decode) --
                    # same recovery as a read-back mismatch, retry.
                    landed = None
                if landed == digest:
                    break
                obs_events.emit(
                    "repair_verify_failed",
                    chunk=chunk_id,
                    dest=dest.name,
                    table=table_name,
                    attempt=attempt + 1,
                )
                self.metrics.counter("repair.verify.failures").add(1)
            else:
                raise RepairError(
                    f"table {table_name!r} still corrupt on {dest.name} "
                    f"after {self.copy_attempts} write attempts"
                )
            nbytes += len(data)
        return nbytes

    # -- background operation -----------------------------------------------------

    def start(self, interval: float = 0.25) -> None:
        """Run convergence passes on a daemon thread.

        Wakes early when a breaker-open notification marks the cluster
        dirty; otherwise scans every ``interval`` seconds.  Off by
        default -- deterministic tests drive :meth:`repair_all`
        directly.
        """
        if self._thread is not None:
            return
        self._stop.clear()

        def _loop():
            while not self._stop.is_set():
                self._dirty.wait(timeout=interval)
                if self._stop.is_set():
                    return
                self._dirty.clear()
                self.repair_all()

        self._thread = threading.Thread(
            target=_loop, name="repair-manager", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        thread, self._thread = self._thread, None
        if thread is None:
            return
        self._stop.set()
        self._dirty.set()
        thread.join(timeout=timeout)

    def __repr__(self):
        return f"RepairManager(chunks={len(self.placement.chunk_ids)})"


@dataclass
class ScrubReport:
    """What one scrub pass found and did."""

    chunks: int = 0
    replicas_checked: int = 0
    tables_verified: int = 0
    #: ``(server, table)`` pairs whose content failed verification.
    mismatches: list = field(default_factory=list)
    #: ``(server, table)`` pairs that could not be read at all.
    unreadable: list = field(default_factory=list)
    healed: int = 0

    @property
    def clean(self) -> bool:
        return not self.mismatches and not self.unreadable


class IntegrityScrubber:
    """Verifies replica content against reference (or quorum) digests.

    Reads every replica's chunk tables *through the file protocol* --
    the same path a repair copy or a hypothetical read would take -- so
    both at-rest damage and read-path corruption are caught.  A replica
    that fails verification is quarantined via the redirector (queries
    stop routing to it immediately) and, when a repair manager is
    wired, healed in place and un-quarantined.
    """

    def __init__(
        self,
        redirector,
        checksums: Optional[ChunkChecksums] = None,
        repair: Optional[RepairManager] = None,
    ):
        self.redirector = redirector
        self.checksums = checksums
        self.repair = repair
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.metrics = obs_metrics.Registry(parent=obs_metrics.REGISTRY)

    def _chunk_ids(self) -> list[int]:
        """Every chunk id any live server exports a dispatch path for."""
        prefix = QUERY_PREFIX
        out: set[int] = set()
        for server in self.redirector.servers():
            for path in server.exports():
                if path.startswith(prefix):
                    out.add(int(path[len(prefix) :]))
        return sorted(out)

    def scrub_chunk(self, chunk_id: int, report: Optional[ScrubReport] = None):
        """Verify every replica of one chunk; quarantine and heal bad ones."""
        report = report if report is not None else ScrubReport()
        cid = int(chunk_id)
        path = query_path(cid)
        # Replicas quarantined on an earlier pass are re-healed first:
        # repair's destination picker skips servers already exporting
        # the path, so nothing else ever writes a blocked replica back
        # to health.  A heal that fails (the damage persists, e.g. a
        # still-corrupting read path) leaves the block in place.
        if self.repair is not None:
            for server_name in sorted(
                self.redirector.quarantine.servers_blocked_for(path)
            ):
                if self.repair.heal_replica(cid, server_name):
                    report.healed += 1
        replicas = [
            s
            for s in self.redirector.servers()
            if s.up
            and s.serves(path)
            and not self.redirector.quarantine.blocked(s.name, path)
        ]
        report.chunks += 1
        # digests[table][server] -- gathered first so tables without a
        # recorded reference can fall back to quorum comparison.
        digests: dict[str, dict[str, str]] = {}
        for server in replicas:
            report.replicas_checked += 1
            try:
                manifest = _read_all(server, manifest_path(cid)).decode()
                for table_name in manifest.splitlines():
                    data = _read_all(server, chunk_path(table_name))
                    digests.setdefault(table_name, {})[server.name] = table_digest(
                        data
                    )
            except FileSystemError:
                report.unreadable.append((server.name, f"chunk {cid}"))
                self.metrics.counter("scrub.unreadable").add(1)
        bad: set[str] = set()
        for table_name, by_server in sorted(digests.items()):
            expected = (
                self.checksums.expected(table_name) if self.checksums else None
            )
            if expected is None:
                counts = Counter(by_server.values())
                top, votes = counts.most_common(1)[0]
                # A quorum needs a strict majority; a 1-1 split (or a
                # single unreferenced replica) is undecidable -- skip
                # rather than quarantine on a coin flip.
                if votes * 2 <= len(by_server):
                    continue
                expected = top
            for server_name, digest in sorted(by_server.items()):
                self.metrics.counter("scrub.tables.checked").add(1)
                if digest == expected:
                    report.tables_verified += 1
                    continue
                report.mismatches.append((server_name, table_name))
                self.metrics.counter("scrub.mismatches").add(1)
                obs_events.emit(
                    "scrub_mismatch",
                    server=server_name,
                    chunk=cid,
                    table=table_name,
                )
                bad.add(server_name)
        for server_name in sorted(bad):
            self.redirector.quarantine.quarantine(server_name, path)
            if self.repair is not None and self.repair.heal_replica(
                cid, server_name
            ):
                report.healed += 1
        return report

    def scrub_all(self) -> ScrubReport:
        """One full pass over every exported chunk."""
        report = ScrubReport()
        with obs_trace.span("scrub.pass", track="repair"):
            for cid in self._chunk_ids():
                self.scrub_chunk(cid, report)
        self.metrics.counter("scrub.passes").add(1)
        obs_events.emit(
            "scrub_pass",
            chunks=report.chunks,
            mismatches=len(report.mismatches),
            healed=report.healed,
        )
        return report

    # -- background operation -----------------------------------------------------

    def start(self, interval: float = 1.0) -> None:
        """Scrub continuously on a daemon thread (off by default)."""
        if self._thread is not None:
            return
        self._stop.clear()

        def _loop():
            while not self._stop.wait(timeout=interval):
                self.scrub_all()

        self._thread = threading.Thread(
            target=_loop, name="integrity-scrubber", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        thread, self._thread = self._thread, None
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=timeout)

    def __repr__(self):
        return f"IntegrityScrubber(repair={'on' if self.repair else 'off'})"
