"""Data servers and the ofs-plugin interface.

A data server exports a set of paths through the redirector's
namespace.  Qserv workers become data servers by installing an *ofs
plugin*: a callback object that intercepts file writes (a chunk query
arriving) and can synthesize file reads (serving a result).  Paths not
claimed by the plugin fall through to the server's ordinary file store,
exactly like Xrootd serving plain files alongside plugin paths.
"""

from __future__ import annotations

from typing import Optional

from .filesystem import FileSystem, FileSystemError
from .protocol import QUERY_PREFIX

__all__ = ["OfsPlugin", "DataServer"]


class OfsPlugin:
    """Base class for custom file-system plugins (Qserv's qserv-ofs).

    Subclasses override any subset of the hooks; the default behavior
    claims nothing and stores nothing.
    """

    def claims(self, path: str) -> bool:
        """Whether this plugin handles ``path`` instead of the plain store."""
        return False

    def on_write(self, path: str, data: bytes) -> None:
        """Called when a write transaction to a claimed path commits."""
        raise NotImplementedError

    def on_read(self, path: str) -> Optional[bytes]:
        """Return bytes for a claimed path, or None if (not yet) available."""
        raise NotImplementedError


class _PluginWriteHandle:
    """Write handle that delivers its bytes to the plugin on close."""

    def __init__(self, server: "DataServer", path: str):
        self._server = server
        self.path = path
        self.mode = "w"
        self._buffer: list[bytes] = []
        self._closed = False

    def write(self, data) -> int:
        if self._closed:
            raise FileSystemError(f"{self.path}: handle is closed")
        if isinstance(data, str):
            data = data.encode()
        self._buffer.append(bytes(data))
        return len(data)

    def close(self) -> None:
        if self._closed:
            raise FileSystemError(f"{self.path}: handle is closed")
        self._closed = True
        self._server.plugin.on_write(self.path, b"".join(self._buffer))

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        if not self._closed:
            self.close()
        return False


class _PluginReadHandle:
    """Read handle over plugin-synthesized bytes."""

    def __init__(self, path: str, data: bytes):
        self.path = path
        self.mode = "r"
        self._data = data
        self._pos = 0
        self._closed = False

    def read(self, size: int = -1) -> bytes:
        if self._closed:
            raise FileSystemError(f"{self.path}: handle is closed")
        if size < 0:
            out = self._data[self._pos :]
            self._pos = len(self._data)
        else:
            out = self._data[self._pos : self._pos + size]
            self._pos += len(out)
        return out

    def close(self) -> None:
        if self._closed:
            raise FileSystemError(f"{self.path}: handle is closed")
        self._closed = True

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        if not self._closed:
            self.close()
        return False


class DataServer:
    """One Xrootd data server: a name, an export list, a store, a plugin."""

    def __init__(self, name: str, plugin: OfsPlugin | None = None):
        self.name = name
        self.fs = FileSystem()
        self.plugin = plugin
        self._exports: set[str] = set()
        self.up = True
        #: Draining: the membership lifecycle's graceful-exit state.  A
        #: draining server finishes what it already accepted (reads of
        #: published results keep working) but refuses *new* chunk-query
        #: opens, and the redirector stops routing new work to it.
        self.draining = False
        #: Optional :class:`repro.xrd.faults.FaultPlan` consulted on
        #: every open; None in production.  This is the first-class
        #: fault-injection seam the chaos tests attach to.
        self.faults = None

    # -- namespace exports ---------------------------------------------------

    def export(self, path: str) -> None:
        """Announce that this server can serve ``path``."""
        self._exports.add(path)

    def unexport(self, path: str) -> None:
        self._exports.discard(path)

    def exports(self) -> set[str]:
        return set(self._exports)

    def serves(self, path: str) -> bool:
        return path in self._exports

    # -- availability -----------------------------------------------------------

    def fail(self) -> None:
        """Simulate a node crash: the server stops answering."""
        self.up = False

    def recover(self) -> None:
        self.up = True

    @property
    def routable(self) -> bool:
        """Should the redirector send *new* work here?"""
        return self.up and not self.draining

    # -- file transactions ---------------------------------------------------------

    def open(self, path: str, mode: str):
        if not self.up:
            raise FileSystemError(f"server {self.name} is down")
        if self.draining and mode == "w" and path.startswith(QUERY_PREFIX):
            # Graceful exit: in-flight work (result reads, repair
            # copies onto other paths) proceeds, new queries do not.
            raise FileSystemError(
                f"server {self.name} is draining; not accepting new queries"
            )
        if self.faults is not None:
            self.faults.before_open(self, path, mode)
        if self.plugin is not None and self.plugin.claims(path):
            if mode == "w":
                handle = _PluginWriteHandle(self, path)
            elif mode == "r":
                data = self.plugin.on_read(path)
                if data is None:
                    raise FileSystemError(
                        f"{path}: not available on server {self.name}"
                    )
                handle = _PluginReadHandle(path, data)
            else:
                raise FileSystemError(f"bad mode {mode!r}")
        else:
            handle = self.fs.open(path, mode)
        if self.faults is not None:
            handle = self.faults.wrap_handle(self, path, mode, handle)
        return handle

    def __repr__(self):
        state = "up" if self.up else "down"
        return f"DataServer({self.name!r}, exports={len(self._exports)}, {state})"
