"""The redirector: a caching namespace look-up service.

Clients never talk to data servers directly; they ask the redirector
which server exports a path and are redirected there.  Look-ups are
cached (that is the paper's description verbatim) and invalidated when
a cached server turns out to be down, at which point the redirector
re-resolves among surviving replicas -- this is where Xrootd's
fault-tolerance shows up in Qserv.
"""

from __future__ import annotations

import threading

from ..analysis.sanitizer import make_lock
from .dataserver import DataServer
from .health import PathQuarantine

__all__ = ["Redirector", "RedirectError"]


class RedirectError(OSError):
    """No live server exports the requested path."""


class Redirector:
    """Routes paths to data servers, with a look-up cache and fail-over."""

    def __init__(self):
        self._servers: dict[str, DataServer] = {}
        self._cache: dict[str, str] = {}
        self._lock = make_lock("Redirector._lock")
        #: Per-(server, path) integrity quarantine, consulted on every
        #: locate: a replica whose content failed a scrub check is
        #: *hard*-excluded from routing -- serving known-corrupt rows
        #: is strictly worse than failing over or failing loudly.
        self.quarantine = PathQuarantine()
        # Monotonic counters for observability and the timing model.
        self.lookups = 0
        self.cache_hits = 0
        self.redirects = 0

    # -- membership --------------------------------------------------------------

    def register(self, server: DataServer) -> None:
        with self._lock:
            if server.name in self._servers:
                raise ValueError(f"server {server.name!r} already registered")
            self._servers[server.name] = server

    def unregister(self, name: str) -> None:
        with self._lock:
            self._servers.pop(name, None)
            self._cache = {p: s for p, s in self._cache.items() if s != name}

    def servers(self) -> list[DataServer]:
        with self._lock:
            return list(self._servers.values())

    def server(self, name: str) -> DataServer:
        with self._lock:
            if name not in self._servers:
                raise RedirectError(f"unknown server {name!r}")
            return self._servers[name]

    # -- namespace ------------------------------------------------------------------

    def locate(self, path: str, exclude=(), health=None) -> DataServer:
        """The data server a client should contact for ``path``.

        Prefers the cached mapping; falls back to scanning exports.  A
        cached-but-down server triggers invalidation and re-resolution
        among remaining replicas.

        ``exclude`` names servers to avoid (hedged dispatch sends the
        duplicate elsewhere).  ``health`` is an optional
        :class:`~repro.xrd.health.HealthTracker`: circuit-broken
        replicas are deprioritized, chosen only when no preferred
        replica remains (which doubles as the probe that lets a
        recovered server back in).
        """
        exclude = set(exclude)
        with self._lock:
            self.lookups += 1
            cached = self._cache.get(path)
            if cached is not None:
                server = self._servers.get(cached)
                if (
                    server is not None
                    and server.routable
                    and server.serves(path)
                    and server.name not in exclude
                    and not self.quarantine.blocked(server.name, path)
                    and (health is None or health.available(server.name))
                ):
                    self.cache_hits += 1
                    return server
                if server is None or not server.routable or not server.serves(path):
                    del self._cache[path]
            candidates = [
                s
                for s in self._servers.values()
                if s.routable
                and s.serves(path)
                and s.name not in exclude
                and not self.quarantine.blocked(s.name, path)
            ]
            if not candidates:
                raise RedirectError(f"no live server exports {path!r}")
            preferred = (
                [s for s in candidates if health.available(s.name)]
                if health is not None
                else candidates
            )
            # Deterministic tie-break; replicas give len(candidates) > 1.
            chosen = min(preferred or candidates, key=lambda s: s.name)
            if not exclude:
                self._cache[path] = chosen.name
            self.redirects += 1
            return chosen

    def locate_all(self, path: str) -> list[DataServer]:
        """Every live server exporting ``path`` (replica enumeration)."""
        with self._lock:
            return [s for s in self._servers.values() if s.up and s.serves(path)]

    def invalidate(self, path: str | None = None) -> None:
        """Drop cached locations (all of them when ``path`` is None)."""
        with self._lock:
            if path is None:
                self._cache.clear()
            else:
                self._cache.pop(path, None)

    def invalidate_server(self, name: str) -> None:
        """Drop every cached location pointing at ``name``.

        Called on read-side fail-over: once a server failed to serve a
        pinned read, none of its cached locations should be re-resolved
        by later queries.
        """
        with self._lock:
            self._cache = {p: s for p, s in self._cache.items() if s != name}

    def __repr__(self):
        return f"Redirector(servers={len(self._servers)}, cached={len(self._cache)})"
