"""The Xrootd/Scalla substitute: a data-addressed communication fabric.

Section 5.1.2 of the paper: "A Scalla/Xrootd cluster is implemented as
a set of data servers and one or more redirectors.  A client connects
to a redirector, which acts as a caching namespace look-up service that
redirects clients to appropriate data servers.  In Qserv, Xrootd data
servers become Qserv workers by plugging custom code into Xrootd as a
custom file system ('ofs plugin')."

This subpackage reproduces that structure in-process:

- :mod:`~repro.xrd.filesystem` -- per-server in-memory file store with
  open/write/read/close file transactions;
- :mod:`~repro.xrd.dataserver` -- a data server that exports paths and
  hosts an *ofs plugin* receiving write/read callbacks;
- :mod:`~repro.xrd.redirector` -- the caching namespace look-up that
  redirects clients to servers, with replica fail-over;
- :mod:`~repro.xrd.client` -- the client API implementing the paper's
  two file-level transactions (write a chunk query to
  ``/query2/<chunkId>``; read results from ``/result/<md5>``);
- :mod:`~repro.xrd.protocol` -- the path scheme and MD5 result naming;
- :mod:`~repro.xrd.retry` -- bounded retries with deterministic-jitter
  backoff and monotonic deadlines;
- :mod:`~repro.xrd.health` -- per-server consecutive-failure circuit
  breaker feeding the redirector's replica choice;
- :mod:`~repro.xrd.faults` -- seeded, composable fault injection
  (crash windows, stragglers, corruption, lost results) attachable to
  any data server;
- :mod:`~repro.xrd.repair` -- the self-healing data plane:
  re-replication of under-replicated chunks over the ``/chunk/`` file
  protocol and background integrity scrubbing with per-replica
  quarantine.
"""

from .filesystem import FileSystem, FileSystemError
from .dataserver import DataServer, OfsPlugin
from .redirector import Redirector, RedirectError
from .retry import Deadline, RetryPolicy
from .health import HealthTracker, PathQuarantine
from .faults import FaultPlan
from .client import XrdClient
from .protocol import query_path, result_path, query_hash
from .repair import (
    ChunkChecksums,
    IntegrityScrubber,
    RepairError,
    RepairManager,
    ScrubReport,
)

__all__ = [
    "FileSystem",
    "FileSystemError",
    "DataServer",
    "OfsPlugin",
    "Redirector",
    "RedirectError",
    "RetryPolicy",
    "Deadline",
    "HealthTracker",
    "PathQuarantine",
    "FaultPlan",
    "XrdClient",
    "query_path",
    "result_path",
    "query_hash",
    "ChunkChecksums",
    "RepairManager",
    "RepairError",
    "IntegrityScrubber",
    "ScrubReport",
]
