"""Per-server health tracking: a consecutive-failure circuit breaker.

The redirector's fail-over (re-resolve among surviving replicas) reacts
to a *down* server, but a flapping or half-broken replica stays ``up``
and keeps winning the deterministic tie-break.  The tracker watches
operation outcomes per server name and trips a breaker after N
consecutive failures; a tripped server is deprioritized by
:meth:`Redirector.locate` until its cooldown elapses, at which point a
single probe is allowed back through (half-open).  A probe success
closes the breaker; a probe failure re-opens it with a doubled cooldown
(capped).

The same tracker serves the multi-master frontend: czar instances are
just another kind of replica to route around.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict

from ..analysis.races import track_shared
from ..analysis.sanitizer import make_lock
from ..obs import events as obs_events
from ..obs import metrics as obs_metrics

__all__ = ["HealthTracker", "ServerHealth", "PathQuarantine"]

_CLOSED, _OPEN, _HALF_OPEN = "closed", "open", "half-open"


@dataclass
class ServerHealth:
    """One server's breaker state (snapshot view)."""

    state: str = _CLOSED
    consecutive_failures: int = 0
    failures: int = 0
    successes: int = 0
    opened_at: float = 0.0
    cooldown: float = 0.0
    probes: int = 0


@track_shared("_servers", "_listeners")
class HealthTracker:
    """Consecutive-failure circuit breaker over named servers.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip the breaker open.
    cooldown:
        Seconds a tripped server is deprioritized before one probe is
        allowed back through; doubles on a failed probe, up to
        ``max_cooldown``.
    clock:
        Injectable monotonic clock (tests advance a fake one).
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown: float = 1.0,
        max_cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.max_cooldown = max_cooldown
        self._clock = clock
        self._lock = make_lock("HealthTracker._lock")
        self._servers: Dict[str, ServerHealth] = {}
        # Breaker-transition listeners (the repair manager watches
        # breaker-open events to schedule re-replication scans).
        # Appended-to under the lock, iterated over a snapshot outside
        # it: listeners may take their own locks.
        self._listeners: list = []

    def add_listener(self, fn) -> None:
        """Register ``fn(server_name, transition)`` for breaker changes.

        ``transition`` is ``"open"`` or ``"close"``.  Called *after*
        the state change commits and outside the tracker's lock, so a
        listener may safely query the tracker or take its own locks.
        """
        with self._lock:
            self._listeners.append(fn)

    def _notify(self, name: str, transition: str) -> None:
        with self._lock:
            listeners = list(self._listeners)
        for fn in listeners:
            fn(name, transition)

    def _entry_locked(self, name: str) -> ServerHealth:
        entry = self._servers.get(name)
        if entry is None:
            entry = self._servers[name] = ServerHealth(cooldown=self.cooldown)
        return entry

    # -- outcome reporting -------------------------------------------------------

    def record_success(self, name: str) -> None:
        # State transitions are computed under the lock but reported
        # (events + metrics) after releasing it: reporting takes its
        # own locks and must never order against this one.
        with self._lock:
            entry = self._entry_locked(name)
            entry.successes += 1
            entry.consecutive_failures = 0
            closed_now = entry.state != _CLOSED
            entry.state = _CLOSED
            entry.cooldown = self.cooldown
        if closed_now:
            obs_events.emit("breaker_close", server=name)
            obs_metrics.counter("health.breaker.closed").add(1)
            self._notify(name, "close")

    def record_failure(self, name: str) -> None:
        opened_now = False
        with self._lock:
            entry = self._entry_locked(name)
            entry.failures += 1
            entry.consecutive_failures += 1
            if entry.state == _HALF_OPEN:
                # The probe failed: back open, with a longer cooldown.
                entry.state = _OPEN
                entry.opened_at = self._clock()
                entry.cooldown = min(entry.cooldown * 2.0, self.max_cooldown)
                opened_now = True
            elif (
                entry.state == _CLOSED
                and entry.consecutive_failures >= self.failure_threshold
            ):
                entry.state = _OPEN
                entry.opened_at = self._clock()
                opened_now = True
            failures = entry.consecutive_failures
            cooldown = entry.cooldown
        if opened_now:
            obs_events.emit(
                "breaker_open",
                server=name,
                consecutive_failures=failures,
                cooldown=cooldown,
            )
            obs_metrics.counter("health.breaker.opened").add(1)
            self._notify(name, "open")

    # -- routing decisions -------------------------------------------------------

    def available(self, name: str) -> bool:
        """Should routing prefer this server right now?

        Closed servers: yes.  Open servers: no, until the cooldown
        elapses -- then the breaker goes half-open and this call admits
        the probe (returning True once; further calls keep admitting
        until the probe's outcome is recorded, which is fine for a
        deprioritization hint).
        """
        probe_admitted = False
        with self._lock:
            entry = self._servers.get(name)
            if entry is None or entry.state == _CLOSED:
                return True
            if entry.state == _OPEN:
                if self._clock() - entry.opened_at >= entry.cooldown:
                    entry.state = _HALF_OPEN
                    entry.probes += 1
                    probe_admitted = True
                else:
                    return False
            # Half-open (pre-existing or just admitted): probe allowed.
        if probe_admitted:
            obs_events.emit("breaker_probe", server=name)
            obs_metrics.counter("health.breaker.probes").add(1)
        return True

    def state(self, name: str) -> str:
        with self._lock:
            entry = self._servers.get(name)
            return entry.state if entry is not None else _CLOSED

    def snapshot(self) -> Dict[str, ServerHealth]:
        """A copy of every tracked server's state (for \\health reports)."""
        with self._lock:
            return {
                name: ServerHealth(**vars(entry))
                for name, entry in self._servers.items()
            }

    def __repr__(self):
        with self._lock:
            open_count = sum(
                1 for e in self._servers.values() if e.state != _CLOSED
            )
        return f"HealthTracker(tracked={len(self._servers)}, tripped={open_count})"


class PathQuarantine:
    """Per-(server, path) quarantine: a breaker keyed by replica, not node.

    The :class:`HealthTracker` deprioritizes a whole flapping server;
    the quarantine blocks one *replica* -- a single path on a single
    server whose content failed an integrity check -- while the same
    server keeps serving its other, verified paths.  Unlike the health
    breaker it is a hard block with no time-based probe: corrupted
    bytes do not heal with a cooldown, so only the scrubber's
    verified-clean re-check (after a repair copy) lifts it.
    """

    def __init__(self):
        self._lock = make_lock("PathQuarantine._lock")
        self._blocked: set = set()

    def quarantine(self, server: str, path: str) -> bool:
        """Block ``path`` on ``server``; True if newly quarantined."""
        with self._lock:
            key = (server, path)
            if key in self._blocked:
                return False
            self._blocked.add(key)
        obs_events.emit("quarantine_set", server=server, path=path)
        obs_metrics.counter("scrub.quarantines").add(1)
        return True

    def clear(self, server: str, path: str) -> bool:
        """Lift the block (a repair restored verified-clean content)."""
        with self._lock:
            key = (server, path)
            if key not in self._blocked:
                return False
            self._blocked.discard(key)
        obs_events.emit("quarantine_clear", server=server, path=path)
        obs_metrics.counter("scrub.quarantines.cleared").add(1)
        return True

    def blocked(self, server: str, path: str) -> bool:
        with self._lock:
            return (server, path) in self._blocked

    def servers_blocked_for(self, path: str) -> set:
        """Names of every server quarantined for ``path``."""
        with self._lock:
            return {s for s, p in self._blocked if p == path}

    def snapshot(self) -> list:
        """Sorted ``(server, path)`` pairs currently blocked."""
        with self._lock:
            return sorted(self._blocked)

    def __len__(self):
        with self._lock:
            return len(self._blocked)

    def __repr__(self):
        return f"PathQuarantine(blocked={len(self)})"
