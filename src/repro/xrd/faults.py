"""First-class fault injection for the dispatch fabric.

Fault-tolerance tests used to express failures as ad-hoc
``DataServer`` subclasses wired in by hand.  This module replaces them
with a composable, seeded :class:`FaultPlan` that any server consults
on every file transaction (``server.faults = plan``, or
``plan.attach(server)``).  A plan is a chain of injectors:

- :meth:`~FaultPlan.die_after_writes` -- the paper's nastiest window:
  the node accepts a chunk query (the write *commits*) and then dies
  before the result can be read;
- :meth:`~FaultPlan.die_after_reads` -- crash after serving N reads;
- :meth:`~FaultPlan.fail_opens` -- refuse the next N opens, then
  recover (flaky-then-recover);
- :meth:`~FaultPlan.slow_reads` / :meth:`~FaultPlan.slow_writes` --
  straggler latency, for timeout and hedging tests;
- :meth:`~FaultPlan.corrupt_reads` -- flip payload bytes past the wire
  magic, so the czar's decode catches it;
- :meth:`~FaultPlan.corrupt_writes` -- flip a committed byte on a
  matching write (bad receiving disk), so repair read-back verification
  catches it;
- :meth:`~FaultPlan.drop_reads` -- the result vanished: reads of
  matching paths fail as if the file was never published.

All counters are thread-safe, probabilistic faults draw from one
seeded ``random.Random``, and builders return ``self`` so plans
compose::

    server.faults = FaultPlan(seed=7).fail_opens(2).slow_reads(0.05, count=3)
"""

from __future__ import annotations

import random
import threading
import time
from typing import Optional

from .filesystem import FileSystemError

__all__ = ["FaultPlan"]


class _Fault:
    """One injector; subclasses override either hook."""

    def before_open(self, plan: "FaultPlan", server, path: str, mode: str) -> None:
        """May raise FileSystemError or sleep before the open proceeds."""

    def wrap_handle(self, plan: "FaultPlan", server, path: str, mode: str, handle):
        """May return a wrapped handle observing reads/writes/close."""
        return handle


class _FaultHandle:
    """Delegating handle with a close callback and a read transform."""

    def __init__(self, inner, on_close=None, transform_read=None):
        self._inner = inner
        self._on_close = on_close
        self._transform_read = transform_read
        self.path = inner.path
        self.mode = inner.mode

    def write(self, data):
        return self._inner.write(data)

    def read(self, size: int = -1):
        data = self._inner.read(size)
        if self._transform_read is not None:
            data = self._transform_read(data)
        return data

    def close(self):
        self._inner.close()
        if self._on_close is not None:
            callback, self._on_close = self._on_close, None
            callback()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        # Mirror the inner handles: close once, even on error exit.
        if getattr(self._inner, "_closed", False):
            return False
        self.close()
        return False


def _matches(path: str, prefix: Optional[str]) -> bool:
    return prefix is None or path.startswith(prefix)


class _DieAfterOps(_Fault):
    """Crash the server after the Nth matching transaction *commits*."""

    def __init__(self, mode: str, count: int, prefix: Optional[str]):
        self.mode = mode
        self.left = count
        self.prefix = prefix

    def wrap_handle(self, plan, server, path, mode, handle):
        if mode != self.mode or not _matches(path, self.prefix):
            return handle
        with plan._lock:
            if self.left <= 0:
                return handle
            self.left -= 1
            fatal = self.left == 0
        if not fatal:
            return handle
        return _FaultHandle(handle, on_close=server.fail)


class _FailOpens(_Fault):
    """Refuse the next N matching opens, then behave normally."""

    def __init__(self, count: int, mode: Optional[str], prefix: Optional[str]):
        self.left = count
        self.mode = mode
        self.prefix = prefix

    def before_open(self, plan, server, path, mode):
        if self.mode is not None and mode != self.mode:
            return
        if not _matches(path, self.prefix):
            return
        with plan._lock:
            if self.left <= 0:
                return
            self.left -= 1
        raise FileSystemError(
            f"server {server.name}: injected open failure for {path!r}"
        )


class _SlowOps(_Fault):
    """Sleep before matching opens (a straggling disk or network)."""

    def __init__(
        self, seconds: float, mode: str, prefix: Optional[str], count: Optional[int]
    ):
        self.seconds = seconds
        self.mode = mode
        self.prefix = prefix
        self.left = count  # None = every time

    def before_open(self, plan, server, path, mode):
        if mode != self.mode or not _matches(path, self.prefix):
            return
        if self.left is not None:
            with plan._lock:
                if self.left <= 0:
                    return
                self.left -= 1
        time.sleep(self.seconds)


class _CorruptReads(_Fault):
    """Flip one payload byte past the wire magic on matching reads."""

    def __init__(
        self, prefix: Optional[str], probability: float, count: Optional[int]
    ):
        self.prefix = prefix
        self.probability = probability
        self.left = count

    def wrap_handle(self, plan, server, path, mode, handle):
        if mode != "r" or not _matches(path, self.prefix):
            return handle
        with plan._lock:
            if self.left is not None and self.left <= 0:
                return handle
            if plan.rng.random() >= self.probability:
                return handle
            if self.left is not None:
                self.left -= 1
            # Seeded, so a run corrupts the same offsets every time.
            pick = plan.rng.random()

        def corrupt(data: bytes) -> bytes:
            if len(data) <= 8:
                return data
            # Past the first 8 bytes: the wire magic survives, so the
            # payload still routes to the binary decoder.  A bit flip
            # alone can land in a numeric column and corrupt silently,
            # so the tail byte is also dropped -- the decoder's bounds
            # checks always catch the short payload.
            offset = 8 + int(pick * (len(data) - 8))
            mutated = bytearray(data[:-1])
            if offset < len(mutated):
                mutated[offset] ^= 0xFF
            return bytes(mutated)

        return _FaultHandle(handle, transform_read=corrupt)


class _CorruptWrites(_Fault):
    """Flip one byte of the committed payload on matching writes.

    Models a bad disk or NIC on the *receiving* side of a copy: the
    transaction succeeds but what landed differs from what was sent.
    The repair path's read-back verification is what catches this.
    """

    def __init__(
        self, prefix: Optional[str], probability: float, count: Optional[int]
    ):
        self.prefix = prefix
        self.probability = probability
        self.left = count

    def wrap_handle(self, plan, server, path, mode, handle):
        if mode != "w" or not _matches(path, self.prefix):
            return handle
        with plan._lock:
            if self.left is not None and self.left <= 0:
                return handle
            if plan.rng.random() >= self.probability:
                return handle
            if self.left is not None:
                self.left -= 1
            pick = plan.rng.random()

        class _Corrupting:
            """Write-side wrapper flipping one byte before commit."""

            def __init__(self, inner):
                self._inner = inner
                self.path = inner.path
                self.mode = inner.mode

            def write(self, data):
                if isinstance(data, str):
                    data = data.encode()
                if len(data) > 8:
                    offset = 8 + int(pick * (len(data) - 8))
                    mutated = bytearray(data)
                    mutated[offset] ^= 0xFF
                    data = bytes(mutated)
                return self._inner.write(data)

            def read(self, size: int = -1):
                return self._inner.read(size)

            def close(self):
                self._inner.close()

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                if getattr(self._inner, "_closed", False):
                    return False
                self.close()
                return False

        return _Corrupting(handle)


class _DropReads(_Fault):
    """Matching reads fail as if the file was never published."""

    def __init__(self, prefix: Optional[str], count: Optional[int]):
        self.prefix = prefix
        self.left = count

    def before_open(self, plan, server, path, mode):
        if mode != "r" or not _matches(path, self.prefix):
            return
        if self.left is not None:
            with plan._lock:
                if self.left <= 0:
                    return
                self.left -= 1
        raise FileSystemError(
            f"server {server.name}: injected lost result for {path!r}"
        )


class FaultPlan:
    """A seeded, composable chain of fault injectors for one server."""

    def __init__(self, seed: int = 0):
        self.rng = random.Random(seed)
        self._lock = threading.Lock()
        self._faults: list[_Fault] = []

    # -- builders (each returns self, so plans chain) ----------------------------

    def die_after_writes(self, count: int = 1, path_prefix: Optional[str] = None):
        """Crash after the Nth write commits (accepted query, lost result)."""
        self._faults.append(_DieAfterOps("w", count, path_prefix))
        return self

    def die_after_reads(self, count: int = 1, path_prefix: Optional[str] = None):
        """Crash after serving the Nth read."""
        self._faults.append(_DieAfterOps("r", count, path_prefix))
        return self

    def fail_opens(
        self,
        count: int,
        mode: Optional[str] = None,
        path_prefix: Optional[str] = None,
    ):
        """Refuse the next N opens (flaky-then-recover)."""
        self._faults.append(_FailOpens(count, mode, path_prefix))
        return self

    def slow_reads(
        self,
        seconds: float,
        path_prefix: Optional[str] = None,
        count: Optional[int] = None,
    ):
        """Delay reads -- a straggling replica (hedging/timeout trigger)."""
        self._faults.append(_SlowOps(seconds, "r", path_prefix, count))
        return self

    def slow_writes(
        self,
        seconds: float,
        path_prefix: Optional[str] = None,
        count: Optional[int] = None,
    ):
        """Delay writes -- slow dispatch acceptance."""
        self._faults.append(_SlowOps(seconds, "w", path_prefix, count))
        return self

    def corrupt_reads(
        self,
        path_prefix: Optional[str] = "/result/",
        probability: float = 1.0,
        count: Optional[int] = None,
    ):
        """Flip a payload byte on matching reads (wire-level corruption)."""
        self._faults.append(_CorruptReads(path_prefix, probability, count))
        return self

    def corrupt_writes(
        self,
        path_prefix: Optional[str] = "/chunk/",
        probability: float = 1.0,
        count: Optional[int] = None,
    ):
        """Flip a committed byte on matching writes (bad receiving disk)."""
        self._faults.append(_CorruptWrites(path_prefix, probability, count))
        return self

    def drop_reads(
        self,
        path_prefix: Optional[str] = "/result/",
        count: Optional[int] = None,
    ):
        """Matching reads fail: the published bytes are gone."""
        self._faults.append(_DropReads(path_prefix, count))
        return self

    # -- hooks called by DataServer.open ----------------------------------------

    def before_open(self, server, path: str, mode: str) -> None:
        for fault in self._faults:
            fault.before_open(self, server, path, mode)

    def wrap_handle(self, server, path: str, mode: str, handle):
        for fault in self._faults:
            handle = fault.wrap_handle(self, server, path, mode, handle)
        return handle

    # -- wiring ------------------------------------------------------------------

    def attach(self, server):
        """Install this plan on ``server`` and return the server."""
        server.faults = self
        return server

    def __repr__(self):
        return f"FaultPlan({len(self._faults)} injectors)"
