"""The Xrootd client API used by the Qserv master.

Wraps the redirector handshake and the two file-level transactions of
paper section 5.4.  ``write_file`` returns the name of the data server
that accepted the write because the second transaction (result read)
goes to *that worker directly* -- the paper's result URL carries
``<worker ip:port>``, not the manager.

Both transactions run under a :class:`~repro.xrd.retry.RetryPolicy`:
bounded attempts, exponential backoff with deterministic jitter, and an
optional :class:`~repro.xrd.retry.Deadline` that caps the whole
operation.  Outcomes feed the optional
:class:`~repro.xrd.health.HealthTracker`, whose circuit breaker steers
the redirector away from flapping replicas.
"""

from __future__ import annotations

from typing import Optional

from ..obs import metrics as obs_metrics
from .dataserver import DataServer
from .filesystem import FileSystemError
from .health import HealthTracker
from .redirector import RedirectError, Redirector
from .retry import Deadline, RetryPolicy

__all__ = ["XrdClient"]


class XrdClient:
    """A client session against one redirector.

    ``max_retries`` is the legacy knob (extra attempts after the
    first); passing an explicit ``retry_policy`` supersedes it and adds
    backoff and per-attempt budgets.
    """

    def __init__(
        self,
        redirector: Redirector,
        max_retries: int = 2,
        retry_policy: Optional[RetryPolicy] = None,
        health: Optional[HealthTracker] = None,
    ):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.redirector = redirector
        self.max_retries = max_retries
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=max_retries + 1, base_backoff=0.0
        )
        self.health = health
        self.bytes_written = 0
        self.bytes_read = 0

    def _report(self, server_name: str, ok: bool) -> None:
        if self.health is None:
            return
        if ok:
            self.health.record_success(server_name)
        else:
            self.health.record_failure(server_name)

    # -- transaction 1: dispatch ------------------------------------------------

    def write_file(
        self,
        path: str,
        data: bytes | str,
        exclude=(),
        deadline: Optional[Deadline] = None,
    ) -> str:
        """Open-write-close on ``path``; returns the accepting server's name.

        Retries through the redirector when the chosen server fails
        mid-transaction (replica fail-over), backing off between
        attempts per the retry policy.  ``exclude`` steers the write
        away from named servers (hedged dispatch); ``deadline`` bounds
        the whole operation.
        """
        if isinstance(data, str):
            data = data.encode()
        policy = self.retry_policy
        last_error: Exception | None = None
        for attempt in range(policy.max_attempts):
            if attempt and not policy.sleep_before(attempt, path, deadline):
                last_error = last_error or TimeoutError("deadline expired")
                break
            if deadline is not None and deadline.expired:
                last_error = last_error or TimeoutError("deadline expired")
                break
            try:
                server = self.redirector.locate(
                    path, exclude=exclude, health=self.health
                )
            except RedirectError as e:
                last_error = e
                break
            try:
                with server.open(path, "w") as fh:
                    fh.write(data)
                self.bytes_written += len(data)
                obs_metrics.counter("xrd.bytes.written").add(len(data))
                self._report(server.name, ok=True)
                return server.name
            except FileSystemError as e:
                last_error = e
                self._report(server.name, ok=False)
                self.redirector.invalidate(path)
        raise RedirectError(f"write to {path!r} failed: {last_error}")

    # -- transaction 2: result collection -----------------------------------------

    def read_file(
        self,
        path: str,
        server_name: str | None = None,
        deadline: Optional[Deadline] = None,
    ) -> bytes:
        """Open-read-close on ``path``.

        With ``server_name`` the read goes to that specific server (the
        worker that accepted the chunk query); otherwise the redirector
        resolves the path.
        """
        policy = self.retry_policy
        last_error: Exception | None = None
        for attempt in range(policy.max_attempts):
            if attempt and not policy.sleep_before(attempt, path, deadline):
                last_error = last_error or TimeoutError("deadline expired")
                break
            if deadline is not None and deadline.expired:
                last_error = last_error or TimeoutError("deadline expired")
                break
            try:
                if server_name is not None:
                    server: DataServer = self.redirector.server(server_name)
                else:
                    server = self.redirector.locate(path, health=self.health)
            except RedirectError as e:
                if server_name is not None:
                    # The pinned worker is gone entirely; its cached
                    # locations must not be re-resolved by later queries.
                    self.redirector.invalidate_server(server_name)
                raise RedirectError(f"read of {path!r} failed: {e}") from e
            try:
                with server.open(path, "r") as fh:
                    data = fh.read()
                self.bytes_read += len(data)
                obs_metrics.counter("xrd.bytes.read").add(len(data))
                self._report(server.name, ok=True)
                return data
            except FileSystemError as e:
                last_error = e
                self._report(server.name, ok=False)
                # Mirror the write side: a failed read means this
                # server's cached locations are suspect.  (Read-side
                # fail-over bugfix: previously only the write path
                # invalidated, so a dead server's cached location kept
                # being re-resolved.)
                self.redirector.invalidate(path)
                self.redirector.invalidate_server(server.name)
                if server_name is not None:
                    break  # a pinned read has no replica to fail over to
        raise RedirectError(f"read of {path!r} failed: {last_error}")

    def exists(self, path: str) -> bool:
        """True when some live server exports ``path``."""
        try:
            self.redirector.locate(path)
            return True
        except RedirectError:
            return False
