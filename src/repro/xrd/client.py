"""The Xrootd client API used by the Qserv master.

Wraps the redirector handshake and the two file-level transactions of
paper section 5.4.  ``write_file`` returns the name of the data server
that accepted the write because the second transaction (result read)
goes to *that worker directly* -- the paper's result URL carries
``<worker ip:port>``, not the manager.
"""

from __future__ import annotations

from .dataserver import DataServer
from .filesystem import FileSystemError
from .redirector import RedirectError, Redirector

__all__ = ["XrdClient"]


class XrdClient:
    """A client session against one redirector."""

    def __init__(self, redirector: Redirector, max_retries: int = 2):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.redirector = redirector
        self.max_retries = max_retries
        self.bytes_written = 0
        self.bytes_read = 0

    # -- transaction 1: dispatch ------------------------------------------------

    def write_file(self, path: str, data: bytes | str) -> str:
        """Open-write-close on ``path``; returns the accepting server's name.

        Retries through the redirector when the chosen server fails
        mid-transaction (replica fail-over).
        """
        if isinstance(data, str):
            data = data.encode()
        last_error: Exception | None = None
        for _ in range(self.max_retries + 1):
            try:
                server = self.redirector.locate(path)
            except RedirectError as e:
                last_error = e
                break
            try:
                with server.open(path, "w") as fh:
                    fh.write(data)
                self.bytes_written += len(data)
                return server.name
            except FileSystemError as e:
                last_error = e
                self.redirector.invalidate(path)
        raise RedirectError(f"write to {path!r} failed: {last_error}")

    # -- transaction 2: result collection -----------------------------------------

    def read_file(self, path: str, server_name: str | None = None) -> bytes:
        """Open-read-close on ``path``.

        With ``server_name`` the read goes to that specific server (the
        worker that accepted the chunk query); otherwise the redirector
        resolves the path.
        """
        last_error: Exception | None = None
        for _ in range(self.max_retries + 1):
            try:
                if server_name is not None:
                    server: DataServer = self.redirector.server(server_name)
                else:
                    server = self.redirector.locate(path)
            except RedirectError as e:
                raise RedirectError(f"read of {path!r} failed: {e}") from e
            try:
                with server.open(path, "r") as fh:
                    data = fh.read()
                self.bytes_read += len(data)
                return data
            except FileSystemError as e:
                last_error = e
                if server_name is not None:
                    break  # a pinned read has no replica to fail over to
                self.redirector.invalidate(path)
        raise RedirectError(f"read of {path!r} failed: {last_error}")

    def exists(self, path: str) -> bool:
        """True when some live server exports ``path``."""
        try:
            self.redirector.locate(path)
            return True
        except RedirectError:
            return False
