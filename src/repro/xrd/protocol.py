"""The Qserv-over-Xrootd path scheme (paper section 5.4).

Dispatch is two file-level transactions:

1. the master opens ``xrootd://<manager>/query2/CC`` for writing, where
   ``CC`` is the chunk id, writes the chunk query text, and closes;
2. the master opens ``xrootd://<worker>/result/H`` for reading, where
   ``H`` is the MD5 hash of the chunk query it wrote (32 lowercase hex
   digits), reads to EOF, and closes.

Result-format negotiation (the section 7.1 transfer optimization) rides
on the same transactions: the master may prepend a
``-- RESULT_FORMAT: binary`` comment line to the chunk query text,
asking the worker to publish its result in the binary columnar wire
format (:mod:`repro.sql.wire`) instead of mysqldump SQL text.  The
result bytes themselves are carried opaquely either way -- Xrootd never
inspects them -- and the master distinguishes the two by the wire
magic, so a worker that ignores the header (an old version, or a
paper-faithful configuration) degrades safely to the SQL dump.
"""

from __future__ import annotations

import hashlib

__all__ = [
    "QUERY_PREFIX",
    "RESULT_PREFIX",
    "CHUNK_PREFIX",
    "MANIFEST_PREFIX",
    "CANCEL_PREFIX",
    "RESULT_FORMAT_HEADER_PREFIX",
    "DEADLINE_HEADER_PREFIX",
    "TRACE_HEADER_PREFIX",
    "ATTEMPT_HEADER_PREFIX",
    "WIRE_FORMATS",
    "query_path",
    "result_path",
    "query_hash",
    "chunk_path",
    "cancel_path",
    "hash_of_cancel_path",
    "manifest_path",
    "table_of_chunk_path",
    "chunk_id_of_manifest_path",
    "result_format_header",
    "deadline_header",
    "trace_header",
    "parse_trace_header",
    "attempt_header",
    "parse_attempt_header",
]

QUERY_PREFIX = "/query2/"
RESULT_PREFIX = "/result/"

#: Chunk-table dump/load paths, used by the self-healing data plane.
#: Reading ``/chunk/<table>`` from a worker returns the named chunk
#: table as binary wire bytes (:mod:`repro.sql.wire`); writing installs
#: the decoded table into the worker's local database.  Repair copies
#: ride the same open/read-write/close file transactions as dispatch,
#: so fault injection and health tracking apply to them unchanged.
CHUNK_PREFIX = "/chunk/"

#: Reading ``/chunkmanifest/<chunkId>`` from a worker returns the
#: newline-separated names of every physical table it holds for that
#: chunk (the chunk table per logical table plus overlap companions).
MANIFEST_PREFIX = "/chunkmanifest/"

#: Writing ``/cancel/<H>`` to a worker withdraws the chunk query whose
#: result would be published at ``/result/<H>``: a still-queued task is
#: discarded without executing (the slot is freed), an in-flight task's
#: result is dropped on completion, and any blocked result read is
#: released with a typed cancellation error.  Best-effort and
#: idempotent.  The write's payload carries the withdrawn submission's
#: ``-- ATTEMPT:`` nonce (empty for header-less dispatches), and the
#: worker refuses only late-arriving dispatches of that *same*
#: submission -- a fresh submission of identical SQL has a fresh nonce
#: and executes normally instead of being poisoned by the old cancel.
CANCEL_PREFIX = "/cancel/"

#: Chunk-query comment line requesting a result encoding from the worker.
RESULT_FORMAT_HEADER_PREFIX = "-- RESULT_FORMAT:"

#: Chunk-query comment line carrying the query's remaining time budget
#: (seconds).  A worker bounds its result-ready wait by it, so a hung
#: executor surfaces as a missing result instead of a deadlocked read.
#: Workers without deadline support ignore the comment line.
DEADLINE_HEADER_PREFIX = "-- DEADLINE:"

#: Chunk-query comment line propagating the czar's trace context
#: (``<trace_id>/<parent_span_id>``) so worker-side execute/dump spans
#: parent under the dispatching attempt's span.  Pure observability
#: metadata: workers without tracing support ignore the line, and it is
#: excluded from :func:`query_hash` so the result identity -- and with
#: it worker-side result caching -- is unchanged by tracing.
TRACE_HEADER_PREFIX = "-- TRACE:"

#: Chunk-query comment line naming the czar submission this dispatch
#: belongs to (an opaque per-``Czar.submit`` nonce shared by every
#: retry and hedge of that query).  Cancellation is scoped by it: a
#: ``/cancel/<H>`` write withdraws only dispatches carrying the same
#: nonce, so re-running the identical SQL later -- same hash ``H`` --
#: is not refused by a worker's cancel memory.  Excluded from
#: :func:`query_hash` like the trace header, so the result path (and
#: worker-side result caching) is unchanged by cancellation support.
ATTEMPT_HEADER_PREFIX = "-- ATTEMPT:"

#: Result encodings a czar may request / a worker may publish.
WIRE_FORMATS = ("binary", "sqldump")


def result_format_header(wire_format: str) -> str:
    """The chunk-query header line requesting ``wire_format`` results."""
    if wire_format not in WIRE_FORMATS:
        raise ValueError(f"unknown wire format {wire_format!r}")
    return f"{RESULT_FORMAT_HEADER_PREFIX} {wire_format}"


def deadline_header(seconds: float) -> str:
    """The chunk-query header line carrying a remaining time budget."""
    if seconds < 0:
        raise ValueError("deadline seconds must be >= 0")
    return f"{DEADLINE_HEADER_PREFIX} {seconds:.3f}"


def trace_header(trace_id: str, span_id: str) -> str:
    """The chunk-query header line carrying the czar's trace context."""
    return f"{TRACE_HEADER_PREFIX} {trace_id}/{span_id}"


def parse_trace_header(text: str):
    """``(trace_id, parent_span_id)`` from a chunk query, or ``None``.

    Only the leading comment-header block is scanned, mirroring how
    workers consume every other header.
    """
    for line in text.lstrip().splitlines():
        if line.startswith(TRACE_HEADER_PREFIX):
            value = line[len(TRACE_HEADER_PREFIX) :].strip()
            trace_id, sep, span_id = value.partition("/")
            if not sep or not trace_id or not span_id:
                return None
            return trace_id, span_id
        if not line.startswith("--"):
            break  # headers only appear before the first statement
    return None


def attempt_header(nonce: str) -> str:
    """The chunk-query header line naming the czar submission."""
    return f"{ATTEMPT_HEADER_PREFIX} {nonce}"


def parse_attempt_header(text: str) -> str:
    """The submission nonce from a chunk query, or ``""`` when absent.

    Only the leading comment-header block is scanned, mirroring how
    workers consume every other header.
    """
    for line in text.lstrip().splitlines():
        if line.startswith(ATTEMPT_HEADER_PREFIX):
            return line[len(ATTEMPT_HEADER_PREFIX) :].strip()
        if not line.startswith("--"):
            break  # headers only appear before the first statement
    return ""


def query_path(chunk_id: int) -> str:
    """The write path for dispatching a chunk query."""
    return f"{QUERY_PREFIX}{int(chunk_id)}"


def query_hash(query_text: str) -> str:
    """MD5 of the chunk query text, as 32 hex digits (the paper's H).

    ``-- TRACE:`` and ``-- ATTEMPT:`` header lines are excluded from
    the hash: trace context and the submission nonce are per-attempt
    metadata, and folding either into the result identity would defeat
    worker-side result caching (and change every result path) whenever
    tracing or cancellable submission is enabled.
    """
    if TRACE_HEADER_PREFIX in query_text or ATTEMPT_HEADER_PREFIX in query_text:
        query_text = "\n".join(
            line
            for line in query_text.splitlines()
            if not line.startswith((TRACE_HEADER_PREFIX, ATTEMPT_HEADER_PREFIX))
        )
    return hashlib.md5(query_text.encode()).hexdigest()


def result_path(query_text_or_hash: str) -> str:
    """The read path for collecting a chunk query's results.

    Accepts either the raw chunk-query text (hashed here) or an
    already-computed 32-hex-digit hash.
    """
    h = query_text_or_hash
    if not (len(h) == 32 and all(c in "0123456789abcdef" for c in h)):
        h = query_hash(query_text_or_hash)
    return f"{RESULT_PREFIX}{h}"


def chunk_path(table_name: str) -> str:
    """The dump/load path for one physical chunk table."""
    return f"{CHUNK_PREFIX}{table_name}"


def table_of_chunk_path(path: str) -> str:
    """Parse the table name back out of a chunk path."""
    if not path.startswith(CHUNK_PREFIX):
        raise ValueError(f"not a chunk path: {path!r}")
    return path[len(CHUNK_PREFIX) :]


def cancel_path(query_text_or_hash: str) -> str:
    """The write path withdrawing one dispatched chunk query.

    Accepts the chunk query text or its 32-hex-digit hash, mirroring
    :func:`result_path` -- the cancel targets the same ``H``.
    """
    h = query_text_or_hash
    if not (len(h) == 32 and all(c in "0123456789abcdef" for c in h)):
        h = query_hash(query_text_or_hash)
    return f"{CANCEL_PREFIX}{h}"


def hash_of_cancel_path(path: str) -> str:
    """Parse the result hash back out of a cancel path."""
    if not path.startswith(CANCEL_PREFIX):
        raise ValueError(f"not a cancel path: {path!r}")
    return path[len(CANCEL_PREFIX) :]


def manifest_path(chunk_id: int) -> str:
    """The read path listing a worker's physical tables for a chunk."""
    return f"{MANIFEST_PREFIX}{int(chunk_id)}"


def chunk_id_of_manifest_path(path: str) -> int:
    """Parse the chunk id back out of a manifest path."""
    if not path.startswith(MANIFEST_PREFIX):
        raise ValueError(f"not a manifest path: {path!r}")
    return int(path[len(MANIFEST_PREFIX) :])


def chunk_id_of_query_path(path: str) -> int:
    """Parse the chunk id back out of a query path."""
    if not path.startswith(QUERY_PREFIX):
        raise ValueError(f"not a query path: {path!r}")
    return int(path[len(QUERY_PREFIX) :])
