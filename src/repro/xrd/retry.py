"""Retry and deadline policy for the dispatch fabric.

The paper's fault-tolerance story (section 5.6) is "the czar
re-dispatches a chunk through a surviving Xrootd replica".  A bare
re-attempt is not enough for continuous operation under partial
failure: a hung worker must surface as a timeout instead of a deadlock,
and a flapping replica must not be hammered in a tight loop.  This
module provides the two small primitives every layer shares:

- :class:`RetryPolicy` -- bounded attempts with exponential backoff and
  *deterministic* jitter (keyed on the operation, so a test run is
  reproducible byte for byte while concurrent chunks still de-correlate);
- :class:`Deadline` -- an absolute monotonic-clock budget threaded from
  ``Czar.submit(sql, deadline=...)`` down to the worker's result-ready
  wait;
- :class:`CancelToken` -- a cooperative cancellation flag threaded from
  the frontend's job/kill surface through ``Czar.submit`` into the
  dispatch loops, so an abandoned query stops consuming attempts and
  worker slots instead of running to completion unobserved.
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass
from typing import Optional

__all__ = ["RetryPolicy", "Deadline", "CancelToken"]


class Deadline:
    """An absolute point on the monotonic clock; ``None`` means forever.

    Use :meth:`after` to start a budget, :meth:`remaining` to bound a
    wait, and :attr:`expired` to decide whether another attempt is
    still worth making.
    """

    __slots__ = ("expires_at",)

    def __init__(self, expires_at: float):
        self.expires_at = float(expires_at)

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A deadline ``seconds`` from now."""
        return cls(time.monotonic() + float(seconds))

    def remaining(self) -> float:
        """Seconds left; never negative."""
        return max(self.expires_at - time.monotonic(), 0.0)

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def __repr__(self):
        return f"Deadline(remaining={self.remaining():.3f}s)"


class CancelToken:
    """A one-way cooperative cancellation flag.

    ``cancel()`` is idempotent and thread-safe; holders poll
    :attr:`cancelled` at loop boundaries (the dispatch retry loop, the
    attempt-wait loop, the worker's dequeue) and unwind with a typed
    error.  ``reason`` records who pulled the trigger, for events.
    """

    __slots__ = ("_event", "reason")

    def __init__(self):
        self._event = threading.Event()
        self.reason: str = ""

    def cancel(self, reason: str = "cancelled") -> None:
        self.reason = self.reason or reason
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def __repr__(self):
        return f"CancelToken(cancelled={self.cancelled})"


def _jitter_fraction(key: str, attempt: int) -> float:
    """A deterministic pseudo-random fraction in [0, 1).

    CRC32 of ``key:attempt`` -- stable across runs and processes (no
    ``PYTHONHASHSEED`` dependence), distinct across chunks and attempts
    so concurrent retries do not thunder in lockstep.
    """
    return (zlib.crc32(f"{key}:{attempt}".encode()) & 0xFFFFFFFF) / 2**32


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    Parameters
    ----------
    max_attempts:
        Total tries for one operation (1 = the old one-shot behavior).
    base_backoff:
        Sleep before the second attempt, in seconds; grows by
        ``backoff_multiplier`` per further attempt, capped at
        ``max_backoff``.
    jitter:
        Fraction of the computed backoff added deterministically from
        the operation key (0 disables; 0.5 means up to +50%).
    attempt_timeout:
        Per-attempt budget in seconds; ``None`` leaves each attempt
        bounded only by the overall query deadline.
    """

    max_attempts: int = 3
    base_backoff: float = 0.01
    backoff_multiplier: float = 2.0
    max_backoff: float = 0.5
    jitter: float = 0.5
    attempt_timeout: Optional[float] = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoff must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")

    def backoff(self, attempt: int, key: str = "") -> float:
        """Sleep before attempt ``attempt`` (attempt 0 never sleeps)."""
        if attempt <= 0 or self.base_backoff == 0:
            return 0.0
        delay = min(
            self.base_backoff * self.backoff_multiplier ** (attempt - 1),
            self.max_backoff,
        )
        return delay * (1.0 + self.jitter * _jitter_fraction(key, attempt))

    def sleep_before(
        self, attempt: int, key: str = "", deadline: Optional[Deadline] = None
    ) -> bool:
        """Sleep the backoff for ``attempt``; False if the deadline forbids it."""
        delay = self.backoff(attempt, key)
        if deadline is not None:
            left = deadline.remaining()
            if left <= 0:
                return False
            delay = min(delay, left)
        if delay > 0:
            time.sleep(delay)
        return True

    def attempt_deadline(self, deadline: Optional[Deadline]) -> Optional[Deadline]:
        """The tighter of the per-attempt budget and the overall deadline."""
        if self.attempt_timeout is None:
            return deadline
        per = Deadline.after(self.attempt_timeout)
        if deadline is None or per.expires_at < deadline.expires_at:
            return per
        return deadline
