"""The section 2.1 requirements mix: 50 LV + 20 HV + 1 SHV concurrent.

"The query access system must support a continuous concurrent load of
about 50 'low volume' queries, 20 'high volume' queries, and 1 'super
high volume' query. The low volume class includes light interactive
use, with response times less than 10 seconds."

The measured prototype (FIFO, no query cost model) cannot hold the
10-second interactive target under that mix -- Figure 14 shows why.
This bench runs the full requirement mix through the cluster model and
quantifies how far FIFO misses, and that adding the designed shared
scanning (4.3) brings interactive latency back toward the target.
"""

import numpy as np

from repro.sim import (
    SimulatedCluster,
    hv2_job,
    hv3_job,
    lv1_job,
    lv2_job,
    paper_cluster,
    paper_data_scale,
    shv1_job,
)

from _series import emit, format_series

N_LV_STREAMS = 50
N_HV = 20


def run_mix(shared_scanning):
    scale = paper_data_scale()
    spec = paper_cluster(150)
    c = SimulatedCluster(spec, num_masters=4, shared_scanning=shared_scanning)
    c.warm_caches(
        "Object", range(scale.chunks_in_use(150)), scale.object_bytes_per_node(150)
    )
    rng = np.random.default_rng(21)

    # 20 concurrent high-volume scans (HV2/HV3 alternating).
    for i in range(N_HV):
        maker = hv2_job if i % 2 == 0 else hv3_job
        c.submit(maker(scale, spec, name=f"HV-{i}"), at=float(i % 5))

    # 1 super-high-volume near-neighbor query.
    c.submit(shv1_job(scale, spec, name="SHV"), at=0.0)

    # 50 interactive streams: each issues queries back to back with the
    # paper's 1 s think time, for 6 queries per stream.
    lv_latencies = []

    def make_stream(sid):
        state = {"i": 0}

        def next_one(outcome=None):
            if outcome is not None:
                lv_latencies.append(outcome.elapsed)
            if state["i"] >= 6:
                return
            i = state["i"]
            state["i"] += 1
            maker = lv1_job if sid % 2 == 0 else lv2_job
            job = maker(
                scale, spec, chunk_id=int(rng.integers(0, 8987)), name=f"LV{sid}-{i}"
            )
            c.submit(job, at=c.sim.now + 1.0, on_complete=next_one)

        next_one()

    for sid in range(N_LV_STREAMS):
        make_stream(sid)

    c.run()
    lv = np.array(lv_latencies)
    hv = np.array([o.elapsed for o in c.outcomes if o.name.startswith("HV-")])
    shv = [o.elapsed for o in c.outcomes if o.name == "SHV"][0]
    return lv, hv, shv


def test_requirements_mixed_load(benchmark):
    results = benchmark.pedantic(
        lambda: {s: run_mix(s) for s in (False, True)}, rounds=1, iterations=1
    )
    rows = []
    for shared, (lv, hv, shv) in results.items():
        rows.append(
            (
                "shared scan" if shared else "FIFO (shipped)",
                float(np.median(lv)),
                float(np.percentile(lv, 90)),
                float(np.max(lv)),
                float(np.mean(lv < 10.0)) * 100,
                float(np.median(hv)),
                shv,
            )
        )
    emit(
        "requirements_mixed_load",
        format_series(
            "Section 2.1 mix (50 LV streams + 20 HV + 1 SHV, 150 nodes): "
            "interactive latency under FIFO vs shared scanning",
            ["policy", "LV median (s)", "LV p90 (s)", "LV max (s)",
             "LV <10s (%)", "HV median (s)", "SHV (s)"],
            rows,
        ),
    )
    fifo = results[False]
    shared = results[True]
    # FIFO misses the 10 s interactive target for a large fraction.
    assert np.mean(fifo[0] < 10.0) < 0.9
    # Shared scanning pulls the mix back toward the target.
    assert np.mean(shared[0] < 10.0) > np.mean(fifo[0] < 10.0)
    assert np.median(shared[1]) < np.median(fifo[1])  # HV throughput too
