"""Figure 11: High volume query execution time vs node count.

Paper: HV1's time "increases linearly with the number of chunks since
the frontend has a fixed amount of work to do per chunk"; HV3 shows a
similar trend (its result was cached, so overhead dominates); HV2
"approximately exhibits the flat behavior that would indicate perfect
scalability".
"""

import numpy as np

from repro.sim import (
    SimulatedCluster,
    hv1_job,
    hv2_job,
    hv3_job,
    paper_cluster,
    paper_data_scale,
)

from _series import emit, format_series


def simulate_fig11():
    scale = paper_data_scale()
    out = {"HV1": {}, "HV2": {}, "HV3": {}}
    for nodes in (40, 100, 150):
        spec = paper_cluster(nodes)
        chunks = range(scale.chunks_in_use(nodes))
        per_node = scale.object_bytes_per_node(nodes)

        def run(job, warm):
            c = SimulatedCluster(spec)
            if warm:
                c.warm_caches("Object", chunks, per_node)
            c.submit(job)
            return c.run()[0].elapsed

        out["HV1"][nodes] = run(hv1_job(scale, spec), False)
        out["HV2"][nodes] = run(hv2_job(scale, spec), True)
        # HV3 "result was cached so execution became more dominated by
        # overhead": model with warm caches too.
        out["HV3"][nodes] = run(hv3_job(scale, spec), True)
    return out


def test_fig11_scaling_hv(benchmark):
    series = benchmark.pedantic(simulate_fig11, rounds=1, iterations=1)
    rows = [
        (nodes, series["HV1"][nodes], series["HV2"][nodes], series["HV3"][nodes])
        for nodes in (40, 100, 150)
    ]
    emit(
        "fig11_scaling_hv",
        format_series(
            "Figure 11: HV execution time (s) vs node count "
            "(paper: HV1 linear in chunks, HV2 ~flat, HV3 between)",
            ["nodes", "HV1", "HV2", "HV3"],
            rows,
        ),
    )
    hv1 = series["HV1"]
    # HV1 linear with chunk count.
    slope = (hv1[150] - hv1[40]) / 110
    assert hv1[100] == np.float64(hv1[100])
    assert abs(hv1[40] + slope * 60 - hv1[100]) / hv1[100] < 0.1
    assert hv1[150] > hv1[40] * 2
    # HV2 roughly flat.
    hv2 = list(series["HV2"].values())
    assert max(hv2) / min(hv2) < 1.15
    # HV2 dominates HV1 in absolute terms (scans beat overhead).
    assert series["HV2"][150] > series["HV1"][150] * 3
