"""Result-transport benchmark: sqldump vs binary columnar wire format.

Measures the full serialize -> transfer(bytes) -> deserialize -> merge
segment on a representative HV2-sized result (the paper's full-sky
filter returns objectId/ra/decl for a few percent of the Object table,
spread over every chunk).  Section 7.1 calls the mysqldump transfer
"not cheap in speed, disk usage, network utilization"; this bench
quantifies the planned-optimization win and records it in
``benchmarks/out/BENCH_transport.json``.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.sql import Database, Table, decode_table, dump_table, encode_table
from repro.sql.dump import load_dump

from _series import OUT_DIR, emit, format_series

# A down-scaled HV2 result: ~150k rows of (objectId, ra_PS, decl_PS)
# spread over 30 chunk results.
NUM_CHUNKS = 30
ROWS_PER_CHUNK = 5_000
REPEATS = 3


def make_chunk_results(rng) -> list[Table]:
    out = []
    for c in range(NUM_CHUNKS):
        n = ROWS_PER_CHUNK
        out.append(
            Table(
                "chunk_result",
                {
                    "objectId": rng.integers(0, 2**48, n),
                    "ra_PS": rng.uniform(0, 360, n),
                    "decl_PS": rng.uniform(-90, 90, n),
                },
            )
        )
    return out


def run_sqldump(chunks: list[Table]) -> tuple[float, float, int, Table]:
    t0 = time.perf_counter()
    payloads = [dump_table(t, "chunk_result").encode() for t in chunks]
    serialize_s = time.perf_counter() - t0
    nbytes = sum(len(p) for p in payloads)

    t0 = time.perf_counter()
    db = Database("LSST")
    tables = []
    for p in payloads:
        name = load_dump(db, p.decode())
        tables.append(db.get_table(name))
        db.drop_table(name)
    merged = Table.concat("qserv_merge", tables)
    merge_s = time.perf_counter() - t0
    return serialize_s, merge_s, nbytes, merged


def run_binary(chunks: list[Table]) -> tuple[float, float, int, Table]:
    t0 = time.perf_counter()
    payloads = [encode_table(t, "chunk_result") for t in chunks]
    serialize_s = time.perf_counter() - t0
    nbytes = sum(len(p) for p in payloads)

    t0 = time.perf_counter()
    merged = Table.concat("qserv_merge", [decode_table(p) for p in payloads])
    merge_s = time.perf_counter() - t0
    return serialize_s, merge_s, nbytes, merged


def best_of(fn, chunks):
    runs = [fn(chunks) for _ in range(REPEATS)]
    best = min(runs, key=lambda r: r[0] + r[1])
    return best


def test_binary_transport_speedup():
    rng = np.random.default_rng(2026)
    chunks = make_chunk_results(rng)
    total_rows = NUM_CHUNKS * ROWS_PER_CHUNK

    sd_ser, sd_mrg, sd_bytes, sd_tab = best_of(run_sqldump, chunks)
    bi_ser, bi_mrg, bi_bytes, bi_tab = best_of(run_binary, chunks)

    # Same merged relation either way.
    assert bi_tab.num_rows == sd_tab.num_rows == total_rows
    np.testing.assert_array_equal(
        bi_tab.column("objectId"), sd_tab.column("objectId")
    )
    np.testing.assert_array_equal(bi_tab.column("ra_PS"), sd_tab.column("ra_PS"))

    sd_total = sd_ser + sd_mrg
    bi_total = bi_ser + bi_mrg
    speedup = sd_total / bi_total
    entry = {
        "result_transport": {
            "rows": total_rows,
            "chunks": NUM_CHUNKS,
            "columns": ["objectId", "ra_PS", "decl_PS"],
            "sqldump": {
                "serialize_s": round(sd_ser, 6),
                "merge_s": round(sd_mrg, 6),
                "total_s": round(sd_total, 6),
                "bytes": sd_bytes,
            },
            "binary": {
                "serialize_s": round(bi_ser, 6),
                "merge_s": round(bi_mrg, 6),
                "total_s": round(bi_total, 6),
                "bytes": bi_bytes,
            },
            "speedup_total": round(speedup, 2),
            "bytes_ratio": round(sd_bytes / bi_bytes, 2),
        }
    }
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_transport.json").write_text(json.dumps(entry, indent=2) + "\n")

    emit(
        "result_transport",
        format_series(
            f"Result transport, {total_rows} rows / {NUM_CHUNKS} chunks "
            "(serialize + merge, best of 3)",
            ["format", "serialize (ms)", "merge (ms)", "total (ms)", "MB moved"],
            [
                ("sqldump", sd_ser * 1e3, sd_mrg * 1e3, sd_total * 1e3, sd_bytes / 1e6),
                ("binary", bi_ser * 1e3, bi_mrg * 1e3, bi_total * 1e3, bi_bytes / 1e6),
                ("speedup", "", "", f"{speedup:.1f}x", f"{sd_bytes / bi_bytes:.1f}x"),
            ],
        ),
    )

    # Acceptance: the binary path is >= 3x faster end to end and smaller.
    assert speedup >= 3.0, f"binary transport only {speedup:.1f}x faster"
    assert bi_bytes < sd_bytes
