"""Observability overhead benchmark: what tracing costs, on and off.

Two paired measurements on the same warm cluster:

- **disabled** (the default): spans resolve to the shared no-op, so
  two disabled batches measured against each other bound the noise
  floor of the harness itself -- the instrumentation must be invisible.
- **enabled at 100% sampling** (``REPRO_TRACE=1`` worst case): every
  query allocates a full span tree, czar and workers both.  The median
  per-pair latency ratio against the disabled runs must stay under 5%.

Methodology matches ``test_resilience.py``: each iteration times both
configurations back-to-back with alternating order, and the overhead
estimate is the median of per-pair ratios, which cancels scheduler
noise that would skew independently measured batches.

Results land in ``benchmarks/out/BENCH_obs_overhead.json``; one traced
query's Chrome trace JSON lands next to it as ``trace_sample.json``
(CI uploads it; it loads directly in https://ui.perfetto.dev).
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.data import build_testbed
from repro.obs import trace as obs_trace

from _series import OUT_DIR, emit, format_series

# The paper's high-volume query class: a full-table scan with
# multi-column aggregation.  Per-chunk compute has to be realistic for
# the ratio to mean anything -- a ~2ms metadata-sized query would
# "measure" the fixed ~0.2ms trace cost as a double-digit regression.
QUERY = (
    "SELECT COUNT(*), AVG(uFlux_PS), AVG(gFlux_PS), AVG(rFlux_PS), "
    "AVG(iFlux_PS), AVG(zFlux_PS) FROM Object WHERE rFlux_PS + gFlux_PS > 0"
)
RUNS = 61
OVERHEAD_LIMIT_PCT = 5.0


def timed_query(tb, expected_rows: int) -> float:
    t0 = time.perf_counter()
    r = tb.query(QUERY)
    elapsed = time.perf_counter() - t0
    assert len(r.rows()) == expected_rows
    return elapsed


def paired_overhead(tb, expected_rows, configure_a, configure_b):
    """Median per-pair latency ratio (a/b - 1) * 100, order-alternated."""
    ratios = []
    a_samples, b_samples = [], []
    for i in range(RUNS):
        first, second = (configure_a, configure_b) if i % 2 == 0 else (
            configure_b,
            configure_a,
        )
        first()
        x = timed_query(tb, expected_rows)
        second()
        y = timed_query(tb, expected_rows)
        a, b = (x, y) if i % 2 == 0 else (y, x)
        a_samples.append(a)
        b_samples.append(b)
        ratios.append(a / b)
    overhead_pct = (float(np.median(ratios)) - 1.0) * 100.0
    return float(np.min(a_samples)), float(np.min(b_samples)), overhead_pct


def test_tracing_overhead_under_limit():
    tb = build_testbed(num_workers=3, num_objects=3000, seed=42)
    total_chunks = None
    try:
        enabled = lambda: obs_trace.configure(enabled=True, sample_rate=1.0)  # noqa: E731
        disabled = lambda: obs_trace.configure(enabled=False)  # noqa: E731

        # Warm the plan caches and count result rows once.
        disabled()
        r = tb.query(QUERY)
        expected_rows = len(r.rows())
        total_chunks = r.stats.chunks_dispatched
        for _ in range(3):
            timed_query(tb, expected_rows)

        # Noise floor: disabled against disabled.
        _, _, control_pct = paired_overhead(tb, expected_rows, disabled, disabled)

        # The real cost: enabled at 100% sampling against disabled.
        traced_s, plain_s, overhead_pct = paired_overhead(
            tb, expected_rows, enabled, disabled
        )

        # One fully-traced query for the CI artifact.
        result = tb.query(QUERY, trace=True)
        trace = result.stats.trace
        assert trace is not None and trace.find("worker.execute") is not None
        OUT_DIR.mkdir(exist_ok=True)
        (OUT_DIR / "trace_sample.json").write_text(trace.to_chrome_json() + "\n")
    finally:
        obs_trace.reset()
        tb.shutdown()

    entry = {
        "obs_overhead": {
            "query": QUERY,
            "chunks": total_chunks,
            "runs": RUNS,
            "control_pct": round(control_pct, 2),
            "traced_best_s": round(traced_s, 6),
            "plain_best_s": round(plain_s, 6),
            "overhead_pct": round(overhead_pct, 2),
            "limit_pct": OVERHEAD_LIMIT_PCT,
        }
    }
    (OUT_DIR / "BENCH_obs_overhead.json").write_text(json.dumps(entry, indent=2) + "\n")

    emit(
        "BENCH_obs_overhead",
        format_series(
            f"Tracing overhead ({total_chunks} chunks, {RUNS} paired runs)",
            ["configuration", "best ms", "overhead"],
            [
                ("tracing off (control)", plain_s * 1e3, f"{control_pct:+.2f}% (noise)"),
                ("tracing on, 100% sampled", traced_s * 1e3, f"{overhead_pct:+.2f}%"),
            ],
        ),
    )

    # Acceptance: the disabled path is indistinguishable from itself
    # (sanity on the harness) and full tracing stays under the limit.
    assert abs(control_pct) < OVERHEAD_LIMIT_PCT, (
        f"noise floor {control_pct:+.2f}% swamps the measurement"
    )
    assert overhead_pct < OVERHEAD_LIMIT_PCT, (
        f"tracing overhead {overhead_pct:.2f}% >= {OVERHEAD_LIMIT_PCT}%"
    )
