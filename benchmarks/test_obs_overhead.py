"""Observability overhead benchmark: what tracing costs, on and off.

Two paired measurements on the same warm cluster:

- **disabled** (the default): spans resolve to the shared no-op, so
  two disabled batches measured against each other bound the noise
  floor of the harness itself -- the instrumentation must be invisible.
- **enabled at 100% sampling** (``REPRO_TRACE=1`` worst case): every
  query allocates a full span tree, czar and workers both.  The median
  per-pair latency ratio against the disabled runs must stay under 5%.

Methodology matches ``test_resilience.py``: each iteration times both
configurations back-to-back with alternating order, and the overhead
estimate is the median of per-pair ratios, which cancels scheduler
noise that would skew independently measured batches.

Results land in ``benchmarks/out/BENCH_obs_overhead.json``; one traced
query's Chrome trace JSON lands next to it as ``trace_sample.json``
(CI uploads it; it loads directly in https://ui.perfetto.dev).
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.data import build_testbed
from repro.obs import metrics as obs_metrics
from repro.obs import slo as obs_slo
from repro.obs import timeseries as obs_timeseries
from repro.obs import trace as obs_trace

from _series import OUT_DIR, emit, format_series

# The paper's high-volume query class: a full-table scan with
# multi-column aggregation.  Per-chunk compute has to be realistic for
# the ratio to mean anything -- a ~2ms metadata-sized query would
# "measure" the fixed ~0.2ms trace cost as a double-digit regression.
QUERY = (
    "SELECT COUNT(*), AVG(uFlux_PS), AVG(gFlux_PS), AVG(rFlux_PS), "
    "AVG(iFlux_PS), AVG(zFlux_PS) FROM Object WHERE rFlux_PS + gFlux_PS > 0"
)
RUNS = 61
OVERHEAD_LIMIT_PCT = 5.0


def timed_query(tb, expected_rows: int) -> float:
    t0 = time.perf_counter()
    r = tb.query(QUERY)
    elapsed = time.perf_counter() - t0
    assert len(r.rows()) == expected_rows
    return elapsed


def paired_overhead(tb, expected_rows, configure_a, configure_b):
    """Median per-pair latency ratio (a/b - 1) * 100, order-alternated."""
    ratios = []
    a_samples, b_samples = [], []
    for i in range(RUNS):
        first, second = (configure_a, configure_b) if i % 2 == 0 else (
            configure_b,
            configure_a,
        )
        first()
        x = timed_query(tb, expected_rows)
        second()
        y = timed_query(tb, expected_rows)
        a, b = (x, y) if i % 2 == 0 else (y, x)
        a_samples.append(a)
        b_samples.append(b)
        ratios.append(a / b)
    overhead_pct = (float(np.median(ratios)) - 1.0) * 100.0
    return float(np.min(a_samples)), float(np.min(b_samples)), overhead_pct


def test_tracing_overhead_under_limit():
    tb = build_testbed(num_workers=3, num_objects=3000, seed=42)
    total_chunks = None
    try:
        enabled = lambda: obs_trace.configure(enabled=True, sample_rate=1.0)  # noqa: E731
        disabled = lambda: obs_trace.configure(enabled=False)  # noqa: E731

        # Warm the plan caches and count result rows once.
        disabled()
        r = tb.query(QUERY)
        expected_rows = len(r.rows())
        total_chunks = r.stats.chunks_dispatched
        for _ in range(3):
            timed_query(tb, expected_rows)

        # Noise floor: disabled against disabled.
        _, _, control_pct = paired_overhead(tb, expected_rows, disabled, disabled)

        # The real cost: enabled at 100% sampling against disabled.
        traced_s, plain_s, overhead_pct = paired_overhead(
            tb, expected_rows, enabled, disabled
        )

        # One fully-traced query for the CI artifact.
        result = tb.query(QUERY, trace=True)
        trace = result.stats.trace
        assert trace is not None and trace.find("worker.execute") is not None
        OUT_DIR.mkdir(exist_ok=True)
        (OUT_DIR / "trace_sample.json").write_text(trace.to_chrome_json() + "\n")
    finally:
        obs_trace.reset()
        tb.shutdown()

    _merge_bench_entry(
        "obs_overhead",
        {
            "query": QUERY,
            "chunks": total_chunks,
            "runs": RUNS,
            "control_pct": round(control_pct, 2),
            "traced_best_s": round(traced_s, 6),
            "plain_best_s": round(plain_s, 6),
            "overhead_pct": round(overhead_pct, 2),
            "limit_pct": OVERHEAD_LIMIT_PCT,
        },
    )

    emit(
        "BENCH_obs_overhead",
        format_series(
            f"Tracing overhead ({total_chunks} chunks, {RUNS} paired runs)",
            ["configuration", "best ms", "overhead"],
            [
                ("tracing off (control)", plain_s * 1e3, f"{control_pct:+.2f}% (noise)"),
                ("tracing on, 100% sampled", traced_s * 1e3, f"{overhead_pct:+.2f}%"),
            ],
        ),
    )

    # Acceptance: the disabled path is indistinguishable from itself
    # (sanity on the harness) and full tracing stays under the limit.
    assert abs(control_pct) < OVERHEAD_LIMIT_PCT, (
        f"noise floor {control_pct:+.2f}% swamps the measurement"
    )
    assert overhead_pct < OVERHEAD_LIMIT_PCT, (
        f"tracing overhead {overhead_pct:.2f}% >= {OVERHEAD_LIMIT_PCT}%"
    )


def _merge_bench_entry(key: str, value: dict) -> None:
    """Add one section to BENCH_obs_overhead.json without clobbering."""
    path = OUT_DIR / "BENCH_obs_overhead.json"
    try:
        entry = json.loads(path.read_text())
    except (OSError, ValueError):
        entry = {}
    entry[key] = value
    path.write_text(json.dumps(entry, indent=2) + "\n")


def test_full_operational_overhead_under_limit():
    """The *whole* operational tier at once: history recorder ticking at
    the production 1 s interval over the global registry, SLO burn-rate
    evaluation on every tick, the always-on progress registry, and 100%
    trace sampling.  The paired-median latency cost against the
    everything-off baseline must stay under the same 5% limit.

    Side artifacts for CI: a Prometheus text scrape of the global
    registry and the recorder's Perfetto counter-track export.
    """
    tb = build_testbed(num_workers=3, num_objects=3000, seed=42)
    recorder = obs_timeseries.HistoryRecorder(interval=1.0)
    monitor = obs_slo.SloMonitor()
    total_chunks = None

    def ops_on():
        obs_trace.configure(enabled=True, sample_rate=1.0)
        if not recorder.running:
            monitor.attach(recorder)
            recorder.start()

    def ops_off():
        if recorder.running:
            recorder.stop()
            monitor.detach()
        obs_trace.configure(enabled=False)

    try:
        ops_off()
        r = tb.query(QUERY)
        expected_rows = len(r.rows())
        total_chunks = r.stats.chunks_dispatched
        for _ in range(3):
            timed_query(tb, expected_rows)

        ops_s, plain_s, overhead_pct = paired_overhead(
            tb, expected_rows, ops_on, ops_off
        )

        # Artifacts: a few deterministic manual ticks bracketing real
        # queries give the Perfetto export non-trivial counter tracks.
        recorder.reset()
        base = time.time()
        recorder.tick(now=base)
        for i in range(3):
            tb.query(QUERY, trace=True)
            recorder.tick(now=base + i + 1.0)
        OUT_DIR.mkdir(exist_ok=True)
        (OUT_DIR / "prometheus_scrape.txt").write_text(
            obs_timeseries.to_prometheus(obs_metrics.REGISTRY)
        )
        (OUT_DIR / "history_counters.json").write_text(
            recorder.to_perfetto("czar.*") + "\n"
        )
    finally:
        ops_off()
        obs_trace.reset()
        tb.shutdown()

    _merge_bench_entry(
        "full_ops_overhead",
        {
            "query": QUERY,
            "chunks": total_chunks,
            "runs": RUNS,
            "recorder_interval_s": recorder.interval,
            "slo_objectives": [o.name for o in obs_slo.DEFAULT_OBJECTIVES],
            "ops_best_s": round(ops_s, 6),
            "plain_best_s": round(plain_s, 6),
            "overhead_pct": round(overhead_pct, 2),
            "limit_pct": OVERHEAD_LIMIT_PCT,
        },
    )

    emit(
        "BENCH_full_ops_overhead",
        format_series(
            f"Full operational observability ({total_chunks} chunks, "
            f"{RUNS} paired runs)",
            ["configuration", "best ms", "overhead"],
            [
                ("everything off", plain_s * 1e3, "baseline"),
                (
                    "recorder@1s + SLO + progress + 100% tracing",
                    ops_s * 1e3,
                    f"{overhead_pct:+.2f}%",
                ),
            ],
        ),
    )

    assert overhead_pct < OVERHEAD_LIMIT_PCT, (
        f"operational observability overhead {overhead_pct:.2f}% "
        f">= {OVERHEAD_LIMIT_PCT}%"
    )
