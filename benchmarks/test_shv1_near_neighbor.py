"""Super High Volume 1 (in-text): near-neighbor self-join over 100 deg^2.

Paper: "the execution times were about 10 minutes (667.19 seconds and
660.25 seconds)" over two randomly selected 100 deg^2 areas, returning
3-5 billion pairs.
"""

import numpy as np

from repro.sim import SimulatedCluster, paper_cluster, paper_data_scale, shv1_job

from _series import emit, format_series


def simulate_shv1():
    scale = paper_data_scale()
    spec = paper_cluster(150)
    times = []
    for i, density in enumerate((0.99, 1.01)):  # two random areas
        c = SimulatedCluster(spec)
        c.submit(shv1_job(scale, spec, density_factor=density, first_chunk=i * 500))
        times.append(c.run()[0].elapsed)
    return times


def test_shv1_simulated(benchmark):
    times = benchmark.pedantic(simulate_shv1, rounds=1, iterations=1)
    rows = [(f"area {i + 1}", t) for i, t in enumerate(times)]
    emit(
        "shv1_near_neighbor",
        format_series(
            "SHV1: near-neighbor over 100 deg^2 (paper: 667.19 s and 660.25 s)",
            ["run", "seconds"],
            rows,
        ),
    )
    for t in times:
        assert 550 < t < 800


def test_shv1_functional(testbed, benchmark):
    """Real stack: sub-chunked self-join with overlap, checked exactly.

    The pair distance stays below the loaded overlap radius so the
    distributed answer equals the brute-force answer.
    """
    dist = testbed.chunker.overlap * 0.9
    sql = (
        "SELECT count(*) FROM Object o1, Object o2 "
        "WHERE qserv_areaspec_box(0, -7, 3, -2) "
        f"AND qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < {dist}"
    )

    result = benchmark(lambda: testbed.query(sql))
    # Ground truth by brute force.
    from repro.sphgeom import SphericalBox, angular_separation

    obj = testbed.tables["Object"]
    ra, dec = obj.column("ra_PS"), obj.column("decl_PS")
    left = np.flatnonzero(SphericalBox(0, -7, 3, -2).contains(ra, dec))
    sep = angular_separation(ra[left][:, None], dec[left][:, None], ra[None, :], dec[None, :])
    assert int(result.table.column("count(*)")[0]) == int(np.count_nonzero(sep < dist))
    assert result.stats.sub_chunk_statements > 0
