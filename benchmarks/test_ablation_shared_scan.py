"""Ablation (sections 4.3 / 7.1): shared scanning vs FIFO scans.

The paper designed shared scanning but had not implemented it; Figure
14 shows the cost (two concurrent full scans each take twice as long).
This bench quantifies what the design would buy: N concurrent full-scan
queries under FIFO vs convoy scheduling.
"""

import numpy as np

from repro.scheduler import FifoScanScheduler, ScanQuery, SharedScanScheduler

from _series import emit, format_series

# One node's Object data as ~60 chunk-sized pieces; read time from the
# calibrated 98 MB/s sequential rate (203 MB / 98 MB/s ~= 2.07 s).
NUM_PIECES = 60
PIECE_READ = 2.07


def sweep(concurrencies):
    rows = []
    for n in concurrencies:
        queries = [ScanQuery(i, 0.0) for i in range(n)]
        fifo = FifoScanScheduler(NUM_PIECES, PIECE_READ).simulate(queries)
        shared = SharedScanScheduler(NUM_PIECES, PIECE_READ).simulate(queries)
        rows.append(
            (
                n,
                fifo.makespan(),
                shared.makespan(),
                fifo.makespan() / shared.makespan(),
                fifo.pieces_read,
                shared.pieces_read,
            )
        )
    return rows


def test_ablation_shared_scan(benchmark):
    rows = benchmark.pedantic(lambda: sweep([1, 2, 4, 8, 16]), rounds=1, iterations=1)
    emit(
        "ablation_shared_scan",
        format_series(
            "Ablation: FIFO vs shared scanning, N concurrent full scans of one node "
            "(paper 4.3: shared scanning returns N results in ~one scan's time)",
            ["N", "FIFO (s)", "shared (s)", "speedup", "FIFO reads", "shared reads"],
            rows,
        ),
    )
    by_n = {r[0]: r for r in rows}
    # N=1: identical (up to float accumulation order).
    assert abs(by_n[1][1] - by_n[1][2]) < 1e-9
    # N=2 FIFO: the Figure 14 doubling (plus seek penalty).
    assert by_n[2][1] > 2 * by_n[1][1]
    # Shared scanning: flat in N (same single scan).
    assert abs(by_n[16][2] - by_n[1][2]) < 1e-9
    # Disk reads: FIFO scales with N, shared does not.
    assert by_n[16][4] == 16 * NUM_PIECES
    assert by_n[16][5] == NUM_PIECES
    # Speedup grows superlinearly (seek penalty compounds).
    assert by_n[16][3] > 16


def simulate_cluster_level():
    """Shared scanning wired into the full cluster model: Figure 14's
    two-HV2 mix with the extension turned on."""
    from repro.sim import SimulatedCluster, hv2_job, paper_cluster, paper_data_scale

    scale = paper_data_scale()
    spec = paper_cluster(150)
    rows = []
    solo = None
    for shared in (False, True):
        c = SimulatedCluster(spec, shared_scanning=shared)
        c.warm_caches(
            "Object", range(scale.chunks_in_use(150)), scale.object_bytes_per_node(150)
        )
        c.submit(hv2_job(scale, spec, name="a"))
        c.submit(hv2_job(scale, spec, name="b"))
        outs = {o.name: o.elapsed for o in c.run()}
        shared_scans = sum(n.scans_shared for n in c.nodes)
        rows.append(
            ("shared scan" if shared else "FIFO (shipped)", outs["a"], outs["b"], shared_scans)
        )
    return rows


def test_ablation_shared_scan_cluster(benchmark):
    rows = benchmark.pedantic(simulate_cluster_level, rounds=1, iterations=1)
    emit(
        "ablation_shared_scan_cluster",
        format_series(
            "Ablation: Figure 14's 2x HV2 mix with shared scanning on/off "
            "(paper 4.3's prediction, quantified)",
            ["policy", "HV2-a (s)", "HV2-b (s)", "scans shared"],
            rows,
        ),
    )
    fifo, shared = rows[0], rows[1]
    # With the extension, both scans finish in ~half the FIFO time and
    # every chunk read is shared.
    assert shared[1] < fifo[1] * 0.6
    assert shared[3] > 0
