"""Ablation (section 4.4): sub-chunk granularity vs near-neighbor join cost.

"With spatial data split into smaller partitions, a SQL engine
computing the join need not even consider (and reject) all possible
pairs of objects ... a task that is naively O(n^2) becomes O(kn)."
This bench executes a real near-neighbor query on the real stack while
sweeping sub-stripes per stripe, measuring candidate pairs examined.
"""

import numpy as np
import pytest

from repro.data import build_testbed, synthesize_objects

from _series import emit, format_series

SQL = (
    "SELECT count(*) FROM Object o1, Object o2 "
    "WHERE qserv_areaspec_box(0, -7, 4, -1) "
    "AND qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < {dist}"
)


def sweep_sub_stripes():
    objects = synthesize_objects(3000, seed=77)
    results = []
    baseline_pairs = None
    answer = None
    for num_sub in (1, 2, 4, 8):
        tb = build_testbed(
            num_workers=2,
            num_objects=1,
            num_stripes=18,
            num_sub_stripes=num_sub,
            overlap=0.05,
            objects=objects.copy(),
            seed=77,
        )
        dist = tb.chunker.overlap * 0.9
        r = tb.query(SQL.format(dist=dist))
        count = int(r.table.column("count(*)")[0])
        if answer is None:
            answer = count
        # Candidate pairs examined = sum over sub-chunk statements of
        # |sub| * (|sub| + |overlap|); measured via worker stats.
        pairs = sum(
            w.stats.result_rows for w in tb.workers.values()
        )  # rows returned (post-filter)
        examined = _examined_pairs(tb)
        if baseline_pairs is None:
            baseline_pairs = examined
        results.append((num_sub, count, examined, baseline_pairs / examined))
        assert count == answer, "sub-chunking must not change the answer"
    return results, answer


def _examined_pairs(tb):
    """Candidate pairs the engine evaluated, from sub-chunk row counts."""
    total = 0
    ch = tb.chunker
    obj = tb.tables["Object"]
    ra, dec = obj.column("ra_PS"), obj.column("decl_PS")
    from repro.sphgeom import SphericalBox

    region = SphericalBox(0, -7, 4, -1)
    for cid in ch.chunks_intersecting(region):
        cid = int(cid)
        in_chunk = ch.chunk_box(cid).contains(ra, dec)
        scids = ch.sub_chunks_intersecting(cid, region)
        for scid in scids:
            scid = int(scid)
            box = ch.sub_chunk_box(cid, scid)
            n_sub = int(np.count_nonzero(box.contains(ra, dec)))
            n_ovl = int(np.count_nonzero(ch.in_sub_chunk_overlap(cid, scid, ra, dec)))
            total += n_sub * (n_sub + n_ovl)
    return max(total, 1)


def test_ablation_subchunks(benchmark):
    (rows, answer) = benchmark.pedantic(sweep_sub_stripes, rounds=1, iterations=1)
    emit(
        "ablation_subchunks",
        format_series(
            f"Ablation: sub-stripes per stripe vs near-neighbor candidate pairs "
            f"(identical answer = {answer} pairs found; paper 4.4: O(n^2) -> O(kn))",
            ["sub-stripes", "answer", "pairs examined", "reduction vs 1"],
            rows,
        ),
    )
    by_sub = {r[0]: r for r in rows}
    # All configurations return the identical answer (asserted in sweep).
    # Finer sub-chunks examine strictly fewer candidate pairs.
    assert by_sub[8][2] < by_sub[4][2] < by_sub[2][2] < by_sub[1][2]
    # And the reduction is drastic (>= 4x by 8 sub-stripes).
    assert by_sub[8][3] > 4.0
