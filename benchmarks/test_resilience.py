"""Resilience benchmark: what fault tolerance costs, and what it buys.

Three measurements on a real in-process cluster (2x replication):

- **steady state**: per-query latency of the default resilient
  dispatch path (bounded retries + health tracking; hedging stays
  opt-in because racing a duplicate through a thread pool is not free
  at sub-millisecond chunk latencies) against a bare one-shot czar on
  the same healthy cluster.  The machinery must cost < 5% when nothing
  fails.
- **recovery**: a replica dies right after accepting a chunk query
  (the worst window); the query must still answer correctly, and the
  extra latency over a healthy run is the recovery cost.
- **hedging**: a straggling primary replica delays result reads; hedged
  dispatch should win back most of the stall by racing a second
  replica.

Results land in ``benchmarks/out/BENCH_resilience.json``.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.data import build_testbed
from repro.qserv import Czar, HedgePolicy
from repro.xrd import FaultPlan, RetryPolicy

from _series import OUT_DIR, emit, format_series

QUERY = "SELECT COUNT(*) FROM Object"
STEADY_RUNS = 101
STALL_S = 0.4


def make_tb(**kw):
    kw.setdefault("num_workers", 3)
    kw.setdefault("num_objects", 1500)
    kw.setdefault("seed", 42)
    kw.setdefault("replication", 2)
    return build_testbed(**kw)


def bare_czar(tb) -> Czar:
    """A pre-resilience czar: one attempt, no backoff, no hedging."""
    return Czar(
        tb.redirector,
        tb.metadata,
        tb.chunker,
        secondary_index=tb.secondary_index,
        available_chunks=tb.placement.chunk_ids,
        retry_policy=RetryPolicy(max_attempts=1, base_backoff=0.0),
    )


def timed_query(czar, expected: int) -> float:
    t0 = time.perf_counter()
    r = czar.submit(QUERY)
    elapsed = time.perf_counter() - t0
    assert int(r.table.column("COUNT(*)")[0]) == expected
    return elapsed


def steady_state_latencies(resilient, bare, expected: int):
    """Paired latency comparison of the two czars.

    Each iteration times both configs back-to-back (order alternating),
    so both samples of a pair see near-identical machine state; the
    overhead estimate is the median of the per-pair ratios, which
    cancels scheduler noise that would skew two independently-measured
    batches.  Returns ``(resilient_best, bare_best, overhead_pct)``.
    """
    res_samples, bare_samples, ratios = [], [], []
    for i in range(STEADY_RUNS):
        if i % 2 == 0:
            r = timed_query(resilient, expected)
            b = timed_query(bare, expected)
        else:
            b = timed_query(bare, expected)
            r = timed_query(resilient, expected)
        res_samples.append(r)
        bare_samples.append(b)
        ratios.append(r / b)
    overhead_pct = (float(np.median(ratios)) - 1.0) * 100.0
    return float(np.min(res_samples)), float(np.min(bare_samples)), overhead_pct


def test_resilience_cost_and_recovery():
    # -- steady state: resilient vs bare dispatch, same healthy cluster --------
    tb = make_tb()  # the default config: retries + health tracking
    total = tb.tables["Object"].num_rows
    baseline = bare_czar(tb)
    try:
        # Warm both plan caches, then measure interleaved.
        for _ in range(3):
            timed_query(tb.czar, total)
            timed_query(baseline, total)
        resilient_s, bare_s, overhead_pct = steady_state_latencies(
            tb.czar, baseline, total
        )
    finally:
        baseline.close()
        tb.shutdown()

    # -- recovery: a replica dies after accepting a chunk query ----------------
    tb = make_tb()
    total = tb.tables["Object"].num_rows
    try:
        t0 = time.perf_counter()
        tb.czar.submit(QUERY)
        healthy_s = time.perf_counter() - t0

        victim = tb.placement.nodes[0]
        FaultPlan().die_after_writes(1).attach(tb.servers[victim])
        t0 = time.perf_counter()
        r = tb.czar.submit(QUERY)
        failover_s = time.perf_counter() - t0
        assert int(r.table.column("COUNT(*)")[0]) == total
        assert r.stats.chunks_retried >= 1
        chunks_retried = r.stats.chunks_retried
    finally:
        tb.shutdown()
    recovery_s = max(failover_s - healthy_s, 0.0)

    # -- hedging: straggling primary vs hedged dispatch ------------------------
    def straggler_run(hedge_policy):
        tb = make_tb(hedge_policy=hedge_policy)
        total = tb.tables["Object"].num_rows
        try:
            straggler = tb.placement.nodes[0]
            FaultPlan().slow_reads(STALL_S, path_prefix="/result/", count=1).attach(
                tb.servers[straggler]
            )
            t0 = time.perf_counter()
            r = tb.czar.submit(QUERY)
            elapsed = time.perf_counter() - t0
            assert int(r.table.column("COUNT(*)")[0]) == total
            return elapsed, r.stats
        finally:
            tb.shutdown()

    stalled_s, _ = straggler_run(None)
    hedged_s, hedged_stats = straggler_run(HedgePolicy(delay=0.05))
    assert hedged_stats.chunks_hedged >= 1
    assert hedged_stats.hedges_won >= 1

    entry = {
        "resilience": {
            "steady_state": {
                "bare_best_s": round(bare_s, 6),
                "resilient_best_s": round(resilient_s, 6),
                "overhead_pct": round(overhead_pct, 2),
                "runs": STEADY_RUNS,
            },
            "recovery": {
                "healthy_s": round(healthy_s, 6),
                "failover_s": round(failover_s, 6),
                "recovery_latency_s": round(recovery_s, 6),
                "chunks_retried": chunks_retried,
            },
            "hedging": {
                "stall_s": STALL_S,
                "unhedged_s": round(stalled_s, 6),
                "hedged_s": round(hedged_s, 6),
                "chunks_hedged": hedged_stats.chunks_hedged,
                "hedges_won": hedged_stats.hedges_won,
            },
        }
    }
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_resilience.json").write_text(json.dumps(entry, indent=2) + "\n")

    emit(
        "resilience",
        format_series(
            "Dispatch resilience (COUNT(*), 3 workers, 2x replication)",
            ["scenario", "latency (ms)", "notes"],
            [
                ("bare steady state", bare_s * 1e3, "1 attempt, no health"),
                (
                    "resilient steady state",
                    resilient_s * 1e3,
                    f"overhead {overhead_pct:+.1f}%",
                ),
                ("healthy query", healthy_s * 1e3, ""),
                (
                    "replica dies mid-query",
                    failover_s * 1e3,
                    f"{chunks_retried} chunk(s) re-dispatched",
                ),
                (f"straggler ({STALL_S * 1e3:.0f}ms stall)", stalled_s * 1e3, "no hedging"),
                (
                    "straggler, hedged",
                    hedged_s * 1e3,
                    f"{hedged_stats.hedges_won} hedge(s) won",
                ),
            ],
        ),
    )

    # Acceptance: near-free when healthy, and hedging recovers most of
    # the stall (the hedged run must beat the full stall comfortably).
    assert overhead_pct < 5.0, f"resilience overhead {overhead_pct:.1f}% >= 5%"
    assert hedged_s < stalled_s


def test_self_healing_idle_overhead():
    """Background repair + scrub must be near-free on a healthy cluster.

    Two identical clusters: one with the repair manager and integrity
    scrubber looping on daemon threads, one with them off.  Query
    latencies are measured pairwise-interleaved (order alternating) and
    the overhead is the median of per-pair ratios -- the same estimator
    as the steady-state dispatch comparison above, for the same reason:
    it cancels scheduler noise and the occasional sample that lands on
    top of a scrub pass.  Also times one full repair convergence after
    a node death, for the record.
    """
    tb_idle = make_tb(seed=43)
    tb_active = make_tb(seed=43)
    total = tb_idle.tables["Object"].num_rows
    tb_active.repair.start(interval=0.25)
    tb_active.scrubber.start(interval=0.5)
    try:
        for _ in range(3):
            timed_query(tb_idle.czar, total)
            timed_query(tb_active.czar, total)
        active_samples, idle_samples, ratios = [], [], []
        for i in range(STEADY_RUNS):
            if i % 2 == 0:
                a = timed_query(tb_active.czar, total)
                b = timed_query(tb_idle.czar, total)
            else:
                b = timed_query(tb_idle.czar, total)
                a = timed_query(tb_active.czar, total)
            active_samples.append(a)
            idle_samples.append(b)
            ratios.append(a / b)
        overhead_pct = (float(np.median(ratios)) - 1.0) * 100.0
        active_s = float(np.min(active_samples))
        idle_s = float(np.min(idle_samples))
    finally:
        tb_active.shutdown()
        tb_idle.shutdown()

    # -- repair convergence: how fast a dead node's chunks re-replicate --------
    tb = make_tb(seed=43)
    total = tb.tables["Object"].num_rows
    try:
        victim = tb.placement.nodes[0]
        degraded_chunks = len(tb.placement.chunks_hosted_by(victim))
        tb.servers[victim].fail()
        t0 = time.perf_counter()
        copies = tb.repair.repair_all()
        converge_s = time.perf_counter() - t0
        assert copies == degraded_chunks
        assert tb.repair.under_replicated() == {}
        r = tb.czar.submit(QUERY)
        assert int(r.table.column("COUNT(*)")[0]) == total
    finally:
        tb.shutdown()

    entry = {
        "self_healing": {
            "idle_overhead": {
                "loops_off_best_s": round(idle_s, 6),
                "loops_on_best_s": round(active_s, 6),
                "overhead_pct": round(overhead_pct, 2),
                "runs": STEADY_RUNS,
                "repair_interval_s": 0.25,
                "scrub_interval_s": 0.5,
            },
            "repair_convergence": {
                "chunks_copied": copies,
                "converge_s": round(converge_s, 6),
                "chunks_per_s": round(copies / converge_s, 2) if converge_s else None,
            },
        }
    }
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_repair.json").write_text(json.dumps(entry, indent=2) + "\n")

    emit(
        "self-healing",
        format_series(
            "Self-healing data plane (COUNT(*), 3 workers, 2x replication)",
            ["scenario", "latency (ms)", "notes"],
            [
                ("repair/scrub loops off", idle_s * 1e3, ""),
                (
                    "repair/scrub loops on",
                    active_s * 1e3,
                    f"overhead {overhead_pct:+.1f}%",
                ),
                (
                    "repair convergence after node death",
                    converge_s * 1e3,
                    f"{copies} chunk(s) re-replicated",
                ),
            ],
        ),
    )

    assert overhead_pct < 5.0, f"self-healing overhead {overhead_pct:.1f}% >= 5%"
