"""Resilience benchmark: what fault tolerance costs, and what it buys.

Three measurements on a real in-process cluster (2x replication):

- **steady state**: per-query latency of the default resilient
  dispatch path (bounded retries + health tracking; hedging stays
  opt-in because racing a duplicate through a thread pool is not free
  at sub-millisecond chunk latencies) against a bare one-shot czar on
  the same healthy cluster.  The machinery must cost < 5% when nothing
  fails.
- **recovery**: a replica dies right after accepting a chunk query
  (the worst window); the query must still answer correctly, and the
  extra latency over a healthy run is the recovery cost.
- **hedging**: a straggling primary replica delays result reads; hedged
  dispatch should win back most of the stall by racing a second
  replica.

Results land in ``benchmarks/out/BENCH_resilience.json``.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.data import build_testbed
from repro.qserv import Czar, HedgePolicy
from repro.xrd import FaultPlan, RetryPolicy

from _series import OUT_DIR, emit, format_series

QUERY = "SELECT COUNT(*) FROM Object"
STEADY_RUNS = 101
STALL_S = 0.4


def make_tb(**kw):
    kw.setdefault("num_workers", 3)
    kw.setdefault("num_objects", 1500)
    kw.setdefault("seed", 42)
    kw.setdefault("replication", 2)
    return build_testbed(**kw)


def bare_czar(tb) -> Czar:
    """A pre-resilience czar: one attempt, no backoff, no hedging."""
    return Czar(
        tb.redirector,
        tb.metadata,
        tb.chunker,
        secondary_index=tb.secondary_index,
        available_chunks=tb.placement.chunk_ids,
        retry_policy=RetryPolicy(max_attempts=1, base_backoff=0.0),
    )


def timed_query(czar, expected: int) -> float:
    t0 = time.perf_counter()
    r = czar.submit(QUERY)
    elapsed = time.perf_counter() - t0
    assert int(r.table.column("COUNT(*)")[0]) == expected
    return elapsed


def steady_state_latencies(resilient, bare, expected: int):
    """Paired latency comparison of the two czars.

    Each iteration times both configs back-to-back (order alternating),
    so both samples of a pair see near-identical machine state; the
    overhead estimate is the median of the per-pair ratios, which
    cancels scheduler noise that would skew two independently-measured
    batches.  Returns ``(resilient_best, bare_best, overhead_pct)``.
    """
    res_samples, bare_samples, ratios = [], [], []
    for i in range(STEADY_RUNS):
        if i % 2 == 0:
            r = timed_query(resilient, expected)
            b = timed_query(bare, expected)
        else:
            b = timed_query(bare, expected)
            r = timed_query(resilient, expected)
        res_samples.append(r)
        bare_samples.append(b)
        ratios.append(r / b)
    overhead_pct = (float(np.median(ratios)) - 1.0) * 100.0
    return float(np.min(res_samples)), float(np.min(bare_samples)), overhead_pct


def test_resilience_cost_and_recovery():
    # -- steady state: resilient vs bare dispatch, same healthy cluster --------
    tb = make_tb()  # the default config: retries + health tracking
    total = tb.tables["Object"].num_rows
    baseline = bare_czar(tb)
    try:
        # Warm both plan caches, then measure interleaved.
        for _ in range(3):
            timed_query(tb.czar, total)
            timed_query(baseline, total)
        resilient_s, bare_s, overhead_pct = steady_state_latencies(
            tb.czar, baseline, total
        )
    finally:
        baseline.close()
        tb.shutdown()

    # -- recovery: a replica dies after accepting a chunk query ----------------
    tb = make_tb()
    total = tb.tables["Object"].num_rows
    try:
        t0 = time.perf_counter()
        tb.czar.submit(QUERY)
        healthy_s = time.perf_counter() - t0

        victim = tb.placement.nodes[0]
        FaultPlan().die_after_writes(1).attach(tb.servers[victim])
        t0 = time.perf_counter()
        r = tb.czar.submit(QUERY)
        failover_s = time.perf_counter() - t0
        assert int(r.table.column("COUNT(*)")[0]) == total
        assert r.stats.chunks_retried >= 1
        chunks_retried = r.stats.chunks_retried
    finally:
        tb.shutdown()
    recovery_s = max(failover_s - healthy_s, 0.0)

    # -- hedging: straggling primary vs hedged dispatch ------------------------
    def straggler_run(hedge_policy):
        tb = make_tb(hedge_policy=hedge_policy)
        total = tb.tables["Object"].num_rows
        try:
            straggler = tb.placement.nodes[0]
            FaultPlan().slow_reads(STALL_S, path_prefix="/result/", count=1).attach(
                tb.servers[straggler]
            )
            t0 = time.perf_counter()
            r = tb.czar.submit(QUERY)
            elapsed = time.perf_counter() - t0
            assert int(r.table.column("COUNT(*)")[0]) == total
            return elapsed, r.stats
        finally:
            tb.shutdown()

    stalled_s, _ = straggler_run(None)
    hedged_s, hedged_stats = straggler_run(HedgePolicy(delay=0.05))
    assert hedged_stats.chunks_hedged >= 1
    assert hedged_stats.hedges_won >= 1

    entry = {
        "resilience": {
            "steady_state": {
                "bare_best_s": round(bare_s, 6),
                "resilient_best_s": round(resilient_s, 6),
                "overhead_pct": round(overhead_pct, 2),
                "runs": STEADY_RUNS,
            },
            "recovery": {
                "healthy_s": round(healthy_s, 6),
                "failover_s": round(failover_s, 6),
                "recovery_latency_s": round(recovery_s, 6),
                "chunks_retried": chunks_retried,
            },
            "hedging": {
                "stall_s": STALL_S,
                "unhedged_s": round(stalled_s, 6),
                "hedged_s": round(hedged_s, 6),
                "chunks_hedged": hedged_stats.chunks_hedged,
                "hedges_won": hedged_stats.hedges_won,
            },
        }
    }
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_resilience.json").write_text(json.dumps(entry, indent=2) + "\n")

    emit(
        "resilience",
        format_series(
            "Dispatch resilience (COUNT(*), 3 workers, 2x replication)",
            ["scenario", "latency (ms)", "notes"],
            [
                ("bare steady state", bare_s * 1e3, "1 attempt, no health"),
                (
                    "resilient steady state",
                    resilient_s * 1e3,
                    f"overhead {overhead_pct:+.1f}%",
                ),
                ("healthy query", healthy_s * 1e3, ""),
                (
                    "replica dies mid-query",
                    failover_s * 1e3,
                    f"{chunks_retried} chunk(s) re-dispatched",
                ),
                (f"straggler ({STALL_S * 1e3:.0f}ms stall)", stalled_s * 1e3, "no hedging"),
                (
                    "straggler, hedged",
                    hedged_s * 1e3,
                    f"{hedged_stats.hedges_won} hedge(s) won",
                ),
            ],
        ),
    )

    # Acceptance: near-free when healthy, and hedging recovers most of
    # the stall (the hedged run must beat the full stall comfortably).
    assert overhead_pct < 5.0, f"resilience overhead {overhead_pct:.1f}% >= 5%"
    assert hedged_s < stalled_s
