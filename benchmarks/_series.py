"""Helpers for emitting the reproduced figure series.

Every figure bench regenerates the paper's series and both prints it
and writes it under ``benchmarks/out/`` so the reproduction artifacts
survive the pytest run (EXPERIMENTS.md links to them).
"""

from __future__ import annotations

import os
from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"


def format_series(title: str, headers: list[str], rows: list[tuple]) -> str:
    widths = [
        max(len(str(h)), *(len(_fmt(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = [title, "-" * len(title)]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for r in rows:
        lines.append("  ".join(_fmt(v).ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines) + "\n"


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:.2f}"
    return str(v)


def emit(name: str, text: str) -> None:
    """Print the series and persist it to benchmarks/out/<name>.txt."""
    print("\n" + text)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text)
