"""Table 1: Estimates for LSST's final data release.

Regenerates the paper's size table from the schema-level estimates and
checks the rows x row-size arithmetic against the quoted footprints.
"""

import pytest

from repro.data.schema import TABLE1_ESTIMATES

from _series import emit, format_series

_TB = 2.0**40


def build_table1():
    rows = []
    for name in ("Object", "Source", "ForcedSource"):
        est = TABLE1_ESTIMATES[name]
        rows.append(
            (
                name,
                f"{est.num_rows:.2e}",
                f"{est.row_bytes:.0f}B",
                f"{est.computed_footprint_bytes / _TB:.0f}TB",
                f"{est.paper_footprint_bytes / _TB:.0f}TB",
            )
        )
    return rows


def test_table1_catalog_sizes(benchmark):
    rows = benchmark(build_table1)
    emit(
        "table1",
        format_series(
            "Table 1: key catalog tables (computed vs paper footprints)",
            ["table", "# rows", "row size", "computed", "paper"],
            rows,
        ),
    )
    # Shape assertions: ordering of magnitudes matches the paper.
    by_name = {r[0]: r for r in rows}
    assert float(TABLE1_ESTIMATES["Source"].computed_footprint_bytes) > float(
        TABLE1_ESTIMATES["ForcedSource"].computed_footprint_bytes
    )
    assert float(TABLE1_ESTIMATES["ForcedSource"].computed_footprint_bytes) > float(
        TABLE1_ESTIMATES["Object"].computed_footprint_bytes
    )
    for name in by_name:
        est = TABLE1_ESTIMATES[name]
        ratio = est.computed_footprint_bytes / est.paper_footprint_bytes
        assert 0.75 < ratio < 1.25
