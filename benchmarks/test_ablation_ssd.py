"""Ablation (section 7.2): solid-state storage.

"Solid-state storage has now become a practical alternative ... While
it may be useful for indexes ... shared scanning is still effective in
optimizing performance since DRAM is much faster than flash and flash
still has 'seek' penalty characteristics."  Measured: cold LV1 (seek
bound), uncached HV2 (bandwidth bound), and the 2x HV2 mix with and
without shared scanning -- on both media.
"""

import numpy as np

from repro.sim import (
    SSD_NODE,
    SimulatedCluster,
    hv2_job,
    lv1_job,
    paper_cluster,
    paper_data_scale,
)

from _series import emit, format_series


def simulate_media_comparison():
    scale = paper_data_scale()
    rows = []
    results = {}
    for media, node in (("disk", None), ("ssd", SSD_NODE)):
        spec = paper_cluster(150) if node is None else paper_cluster(150, node=node)

        def solo(job):
            c = SimulatedCluster(spec)
            c.submit(job)
            return c.run()[0].elapsed

        lv1_cold = solo(lv1_job(scale, spec, cold=True))
        hv2_uncached = solo(hv2_job(scale, spec))

        def two_hv2(shared):
            c = SimulatedCluster(spec, shared_scanning=shared)
            c.submit(hv2_job(scale, spec, name="a"))
            c.submit(hv2_job(scale, spec, name="b"))
            return max(o.elapsed for o in c.run())

        fifo2 = two_hv2(False)
        shared2 = two_hv2(True)
        results[media] = (lv1_cold, hv2_uncached, fifo2, shared2)
        rows.append((media, lv1_cold, hv2_uncached, fifo2, shared2, fifo2 / shared2))
    return rows, results


def test_ablation_ssd(benchmark):
    rows, results = benchmark.pedantic(simulate_media_comparison, rounds=1, iterations=1)
    emit(
        "ablation_ssd",
        format_series(
            "Ablation: spinning disk vs flash (paper 7.2) -- cold LV1, uncached HV2, "
            "and 2x HV2 under FIFO vs shared scanning",
            ["media", "LV1 cold (s)", "HV2 uncached (s)", "2xHV2 FIFO (s)",
             "2xHV2 shared (s)", "shared-scan speedup"],
            rows,
        ),
    )
    disk, ssd = results["disk"], results["ssd"]
    # Seeks nearly vanish: cold LV1 on flash drops to near the warm ~4 s.
    assert ssd[0] < disk[0] * 0.6
    assert ssd[0] < 5.0
    # Bandwidth-bound scans speed up by the media ratio (roughly).
    assert ssd[1] < disk[1] * 0.5
    # The paper's claim: shared scanning is STILL effective on flash.
    disk_speedup = disk[2] / disk[3]
    ssd_speedup = ssd[2] / ssd[3]
    assert ssd_speedup > 1.5
    assert disk_speedup > 1.5
