"""Figure 3: Performance on Low Volume 2 (time series from Source).

Paper: 3 runs x 50 executions, ~4 s flat; Run 1 (executed right after
LV1's interfered Run 1) showed the same anomalous ~9 s times.
"""

import numpy as np

from repro.sim import lv2_job, paper_cluster, paper_data_scale

from _series import emit, format_series
from _simruns import run_lv_series


def simulate_fig03():
    scale = paper_data_scale()
    spec = paper_cluster(150)
    rng = np.random.default_rng(3)
    runs = {}
    for run in range(1, 4):
        interference = {i: 4 for i in range(50)} if run == 1 else {}

        def make_job(i, is_cold, run=run):
            chunk = int(rng.integers(0, scale.chunks_in_use(150)))
            return lv2_job(scale, spec, chunk_id=chunk, name=f"LV2-r{run}e{i}")

        runs[run] = run_lv_series(
            spec, make_job, executions=50, interference_execs=interference
        )
    return runs


def test_fig03_lv2_series(benchmark):
    runs = benchmark.pedantic(simulate_fig03, rounds=1, iterations=1)
    rows = [(f"Run{r}", min(t), float(np.mean(t)), max(t)) for r, t in runs.items()]
    emit(
        "fig03_lv2",
        format_series(
            "Figure 3: LV2 execution time (s) per run (paper: ~4 s; Run 1 anomalous ~9 s)",
            ["run", "min", "mean", "max"],
            rows,
        ),
    )
    assert np.mean(runs[1]) > np.mean(runs[2]) * 1.5  # the discounted run
    for r in (2, 3):
        assert 3.0 < np.mean(runs[r]) < 5.5
        # Flat: executions within a clean run vary by < 10%.
        assert np.std(runs[r]) / np.mean(runs[r]) < 0.1


def test_lv2_functional(testbed, object_ids, rng, benchmark):
    """The real stack answering the paper's LV2 query."""
    ids = rng.choice(object_ids, 50)

    def one():
        oid = int(rng.choice(ids))
        return testbed.query(
            "SELECT taiMidPoint, fluxToAbMag(psfFlux), fluxToAbMag(psfFluxErr), "
            f"ra, decl FROM Source WHERE objectId = {oid}"
        )

    result = benchmark(one)
    assert result.stats.used_secondary_index
