"""Figure 7: Performance of High Volume 3 (density: GROUP BY chunkId).

Paper: "significantly faster [than HV2], which is probably due to
reduced results transmission time"; ~100-250 s band, the ~4-minute Run
3 being closest to uncached.
"""

import numpy as np

from repro.sim import (
    SimulatedCluster,
    hv2_job,
    hv3_job,
    paper_cluster,
    paper_data_scale,
)

from _series import emit, format_series


def simulate_fig07():
    scale = paper_data_scale()
    spec = paper_cluster(150)
    chunks = range(scale.chunks_in_use(150))
    per_node = scale.object_bytes_per_node(150)

    def run_once(job, warm):
        c = SimulatedCluster(spec)
        if warm:
            c.warm_caches("Object", chunks, per_node)
        c.submit(job)
        return c.run()[0].elapsed

    hv3_uncached = run_once(hv3_job(scale, spec), False)
    hv3_cached = run_once(hv3_job(scale, spec), True)
    hv2_cached = run_once(hv2_job(scale, spec), True)
    return hv3_uncached, hv3_cached, hv2_cached


def test_fig07_hv3_series(benchmark):
    hv3_unc, hv3_c, hv2_c = benchmark.pedantic(simulate_fig07, rounds=1, iterations=1)
    rows = [
        ("HV3 cached", hv3_c),
        ("HV3 uncached (Run 3)", hv3_unc),
        ("HV2 cached (reference)", hv2_c),
    ]
    emit(
        "fig07_hv3",
        format_series(
            "Figure 7: HV3 density query (s) (paper: faster than HV2; ~4 min closest to uncached)",
            ["regime", "seconds"],
            rows,
        ),
    )
    # HV3 is strictly faster than HV2: its results are tiny, so the
    # master's mysqldump ingest cost disappears ("probably due to
    # reduced results transmission time").
    assert hv3_c < hv2_c
    assert 3 * 60 < hv3_unc < 9 * 60


def test_hv3_functional(testbed, benchmark):
    """Real stack: the paper's exact density query with merge-side AVG."""

    def one():
        return testbed.query(
            "SELECT count(*) AS n, AVG(ra_PS), AVG(decl_PS), chunkId "
            "FROM Object GROUP BY chunkId"
        )

    result = benchmark(one)
    assert result.table.num_rows >= 1
    assert int(np.sum(result.table.column("n"))) == testbed.tables["Object"].num_rows
