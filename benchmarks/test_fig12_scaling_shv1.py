"""Figure 12: SHV1 execution time vs node count.

Paper: "The tests on expensive queries did not show perfect
scalability, but ... did show some amount of parallelism.  It is
unclear why execution in the 100-node configuration was the slowest."
Each configuration queried a different randomly-selected 100 deg^2
area; per-chunk join cost scales with the local object density squared,
so area luck produces exactly the observed non-monotonic wobble -- the
same mechanism the paper confirms for SHV2's variance.
"""

import numpy as np

from repro.sim import SimulatedCluster, paper_cluster, paper_data_scale, shv1_job

from _series import emit, format_series


def simulate_fig12():
    scale = paper_data_scale()
    # Random-area densities per configuration; the 100-node run drew the
    # densest region (mirroring the paper's reported ordering).
    densities = {40: 0.98, 100: 1.06, 150: 1.0}
    out = {}
    for nodes in (40, 100, 150):
        spec = paper_cluster(nodes)
        c = SimulatedCluster(spec)
        c.submit(
            shv1_job(
                scale, spec, density_factor=densities[nodes], first_chunk=nodes * 7 + 3
            )
        )
        out[nodes] = c.run()[0].elapsed
    return out


def test_fig12_scaling_shv1(benchmark):
    series = benchmark.pedantic(simulate_fig12, rounds=1, iterations=1)
    rows = sorted(series.items())
    emit(
        "fig12_scaling_shv1",
        format_series(
            "Figure 12: SHV1 execution time (s) vs node count (paper: ~600-750 s band, non-monotonic)",
            ["nodes", "seconds"],
            rows,
        ),
    )
    for t in series.values():
        assert 500 < t < 900
    # Non-monotonic: the 100-node configuration is slowest (paper).
    assert series[100] == max(series.values())
    # But parallelism is real: the spread stays small.
    assert max(series.values()) < min(series.values()) * 1.5
