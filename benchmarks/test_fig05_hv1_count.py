"""Figure 5: Performance of High Volume 1 (full-sky COUNT(*)).

Paper: 20-30 s on 150 nodes across 3 runs of several executions; the
cost is pure per-chunk dispatch/collection overhead at the master, Run
1 slower from cluster interference.
"""

import numpy as np

from repro.sim import SimulatedCluster, hv1_job, paper_cluster, paper_data_scale

from _series import emit, format_series
from _simruns import interference_job, run_solo


def simulate_fig05():
    scale = paper_data_scale()
    spec = paper_cluster(150)
    runs = {}
    for run in range(1, 4):
        times = []
        for execution in range(9 if run == 1 else 7):
            c = SimulatedCluster(spec)
            if run == 1:
                # "Interference of other processes (queries, maintenance)":
                # competing scans on a handful of nodes stretch the tail.
                for node in range(0, 150, 10):
                    c.submit(interference_job(node, 4, scale, bytes_per_scan=400e6))
            done = {}
            c.submit(hv1_job(scale, spec), on_complete=lambda o: done.update(t=o.elapsed))
            c.run()
            times.append(done["t"])
        runs[run] = times
    return runs


def test_fig05_hv1_series(benchmark):
    runs = benchmark.pedantic(simulate_fig05, rounds=1, iterations=1)
    rows = [(f"Run{r}", min(t), float(np.mean(t)), max(t)) for r, t in runs.items()]
    emit(
        "fig05_hv1",
        format_series(
            "Figure 5: HV1 COUNT(*) execution time (s) (paper: 20-30 s; Run 1 slower)",
            ["run", "min", "mean", "max"],
            rows,
        ),
    )
    for r in (2, 3):
        assert 20.0 < np.mean(runs[r]) < 30.0
    assert np.mean(runs[1]) > np.mean(runs[2])


def test_hv1_functional(testbed, benchmark):
    """Real stack: COUNT(*) dispatched to every chunk and merged."""
    expected = testbed.tables["Object"].num_rows

    def one():
        return testbed.query("SELECT COUNT(*) FROM Object")

    result = benchmark(one)
    assert int(result.table.column("COUNT(*)")[0]) == expected
    assert result.stats.chunks_dispatched == len(testbed.placement.chunk_ids)
