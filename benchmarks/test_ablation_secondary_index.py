"""Ablation (section 5.5): the objectId secondary index on vs off.

"When a query predicated on objectId ... is submitted, the frontend
executes queries on this table to compute the containing set of
chunks."  Without it, LV1-class queries dispatch full-sky.  This bench
runs the real stack both ways and counts dispatched chunk queries and
transferred bytes.
"""

import numpy as np

from repro.qserv import Czar

from _series import emit, format_series


def compare(testbed, object_ids, rng):
    with_index = testbed.czar
    without_index = Czar(
        testbed.redirector,
        testbed.metadata,
        testbed.chunker,
        secondary_index=None,
        available_chunks=testbed.placement.chunk_ids,
    )
    oids = [int(o) for o in rng.choice(object_ids, 10)]
    rows = []
    for label, czar in (("indexed", with_index), ("full-sky", without_index)):
        chunks = bytes_moved = elapsed = 0
        for oid in oids:
            r = czar.submit(f"SELECT * FROM Object WHERE objectId = {oid}")
            assert r.table.num_rows == 1
            chunks += r.stats.chunks_dispatched
            bytes_moved += r.stats.bytes_collected
            elapsed += r.stats.elapsed_seconds
        rows.append((label, chunks / len(oids), bytes_moved / len(oids), elapsed / len(oids)))
    return rows


def test_ablation_secondary_index(testbed, object_ids, rng, benchmark):
    rows = benchmark.pedantic(
        lambda: compare(testbed, object_ids, rng), rounds=1, iterations=1
    )
    emit(
        "ablation_secondary_index",
        format_series(
            "Ablation: objectId secondary index on/off, mean per LV1 query "
            "(paper 5.5: the index prevents full-sky dispatch)",
            ["mode", "chunks dispatched", "bytes collected", "seconds"],
            rows,
        ),
    )
    indexed, full_sky = rows[0], rows[1]
    assert indexed[1] == 1.0
    assert full_sky[1] == len(testbed.placement.chunk_ids)
    # Bytes and time scale with the dispatch width.
    assert full_sky[2] > indexed[2]
    assert full_sky[3] > indexed[3]
