"""Super High Volume 2 (in-text): Sources not near Objects, 150 deg^2.

Paper: "We recorded times of a few hours (5:20:38.00, 2:06:56.33, and
2:41:03.45).  The variance is presumed to be caused by varying spatial
object density over the three random areas selected."
"""

import numpy as np

from repro.sim import SimulatedCluster, paper_cluster, paper_data_scale, shv2_job

from _series import emit, format_series


def simulate_shv2():
    scale = paper_data_scale()
    spec = paper_cluster(150)
    times = []
    # Three random areas with the paper's presumed density variation.
    for i, density in enumerate((1.35, 0.92, 1.0)):
        c = SimulatedCluster(spec)
        c.submit(shv2_job(scale, spec, density_factor=density, first_chunk=i * 700))
        times.append(c.run()[0].elapsed)
    return times


def _hms(seconds):
    h = int(seconds // 3600)
    m = int(seconds % 3600 // 60)
    s = seconds % 60
    return f"{h}:{m:02d}:{s:05.2f}"


def test_shv2_simulated(benchmark):
    times = benchmark.pedantic(simulate_shv2, rounds=1, iterations=1)
    rows = [(f"area {i + 1}", t, _hms(t)) for i, t in enumerate(times)]
    emit(
        "shv2_sources_not_near",
        format_series(
            "SHV2: Object x Source join over 150 deg^2 "
            "(paper: 5:20:38, 2:06:56, 2:41:03)",
            ["run", "seconds", "h:m:s"],
            rows,
        ),
    )
    for t in times:
        assert 1.8 * 3600 < t < 5.6 * 3600
    # Density variation produces hours-scale spread, as presumed.
    assert max(times) / min(times) > 1.5


def test_shv2_functional(testbed, benchmark):
    """Real stack: the paper's exact join shape, checked against brute force."""
    sql = (
        "SELECT o.objectId, s.sourceId, s.ra, s.decl, o.ra_PS, o.decl_PS "
        "FROM Object o, Source s "
        "WHERE qserv_areaspec_box(0, -7, 3, 0) "
        "AND o.objectId = s.objectId "
        "AND qserv_angSep(s.ra, s.decl, o.ra_PS, o.decl_PS) > 0.00002"
    )
    result = benchmark(lambda: testbed.query(sql))

    from repro.sphgeom import SphericalBox, angular_separation

    obj, src = testbed.tables["Object"], testbed.tables["Source"]
    box = SphericalBox(0, -7, 3, 0)
    keep = box.contains(obj.column("ra_PS"), obj.column("decl_PS"))
    pos = {
        int(o): (r, d)
        for o, r, d, k in zip(
            obj.column("objectId"), obj.column("ra_PS"), obj.column("decl_PS"), keep
        )
        if k
    }
    expected = 0
    for o, sr, sd in zip(src.column("objectId"), src.column("ra"), src.column("decl")):
        if int(o) in pos:
            orr, od = pos[int(o)]
            if angular_separation(sr, sd, orr, od) > 0.00002:
                expected += 1
    assert result.table.num_rows == expected
