"""Ablation (section 7.6): distributing the master's management load.

"A Qserv instance at LSST's planned scale may have a million fragment
queries in flight, and ... managing millions from a single point is
likely to be problematic.  One way to distribute the management load is
to launch multiple master instances."  Two measurements:

- model: HV1 (pure dispatch overhead) at 150 nodes vs master count --
  the serial bottleneck divides almost ideally;
- functional: the real LoadBalancingFrontend running a concurrent batch
  over 1 vs 3 masters with threaded workers.
"""

import time

import numpy as np

from repro.data import build_testbed
from repro.qserv import LoadBalancingFrontend
from repro.sim import SimulatedCluster, hv1_job, paper_cluster, paper_data_scale

from _series import emit, format_series


def simulate_master_sweep():
    scale = paper_data_scale()
    spec = paper_cluster(150)
    rows = []
    base = None
    for m in (1, 2, 4, 8, 16):
        c = SimulatedCluster(spec, num_masters=m)
        c.submit(hv1_job(scale, spec))
        t = c.run()[0].elapsed
        if base is None:
            base = t
        rows.append((m, t, base / t))
    return rows


def test_ablation_multimaster_model(benchmark):
    rows = benchmark.pedantic(simulate_master_sweep, rounds=1, iterations=1)
    emit(
        "ablation_multimaster",
        format_series(
            "Ablation: HV1 (dispatch-overhead-bound) vs master count, 150 nodes "
            "(paper 7.6: distribute the management load)",
            ["masters", "HV1 (s)", "speedup"],
            rows,
        ),
    )
    by_m = {r[0]: r for r in rows}
    assert by_m[2][2] > 1.5
    assert by_m[8][2] > 3.5
    # Diminishing returns: the frontend_latency floor remains.
    assert by_m[16][1] > 3.0


def simulate_tree_sweep():
    """Section 7.6's *other* proposal: tree-based query management.

    Serial top-master work is O(fanout) + O(chunks/fanout); the sweep
    shows the U-curve with its optimum near sqrt(8987) ~= 95.
    """
    scale = paper_data_scale()
    spec = paper_cluster(150)
    rows = []
    for fanout in (None, 10, 30, 95, 300, 1000):
        c = SimulatedCluster(spec, tree_fanout=fanout)
        c.submit(hv1_job(scale, spec))
        t = c.run()[0].elapsed
        rows.append(("flat (paper)" if fanout is None else fanout, t))
    return rows


def test_ablation_tree_dispatch(benchmark):
    rows = benchmark.pedantic(simulate_tree_sweep, rounds=1, iterations=1)
    emit(
        "ablation_tree_dispatch",
        format_series(
            "Ablation: tree-based query management, HV1 vs fanout, 150 nodes "
            "(paper 7.6: dispatch groups to lower-level masters)",
            ["fanout", "HV1 (s)"],
            rows,
        ),
    )
    by = {r[0]: r[1] for r in rows}
    # The tree crushes the flat master's serial cost...
    assert by[95] < by["flat (paper)"] / 5
    # ...with a U-shaped optimum near sqrt(chunks).
    assert by[95] < by[10]
    assert by[95] < by[1000]


def test_ablation_multimaster_functional(benchmark):
    """Real stack: concurrent batch throughput, 1 vs 3 masters."""
    tb = build_testbed(num_workers=3, num_objects=600, seed=91, worker_slots=2)
    statements = ["SELECT COUNT(*) FROM Object"] * 6

    def run_with(masters):
        fe = LoadBalancingFrontend(
            tb.redirector,
            tb.metadata,
            tb.chunker,
            num_masters=masters,
            secondary_index=tb.secondary_index,
            available_chunks=tb.placement.chunk_ids,
        )
        results = fe.query_concurrent(statements)
        counts = {int(r.table.column("COUNT(*)")[0]) for r in results}
        assert counts == {tb.tables["Object"].num_rows}
        return fe.load_per_master()

    loads = benchmark(lambda: run_with(3))
    # The batch spread across all three masters.
    assert all(q >= 1 for q, _ in loads)
    tb.shutdown()
