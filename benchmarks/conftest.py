"""Shared fixtures for the benchmark harness.

Two kinds of benches coexist here:

- *functional* benches time the real in-process Qserv stack on
  down-scaled synthetic data (a small :func:`build_testbed` cluster);
- *figure* benches regenerate the paper's measured series with the
  calibrated cluster timing model (:mod:`repro.sim`) and persist them
  under ``benchmarks/out/``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import build_testbed
from repro.sim import paper_cluster, paper_data_scale


@pytest.fixture(scope="session")
def testbed():
    """A real 4-worker cluster with ~4000 objects, session-shared."""
    return build_testbed(num_workers=4, num_objects=4000, seed=42)


@pytest.fixture(scope="session")
def scale():
    return paper_data_scale()


@pytest.fixture(scope="session")
def spec150():
    return paper_cluster(150)


@pytest.fixture(scope="session")
def object_ids(testbed):
    return testbed.tables["Object"].column("objectId")


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(2026)
