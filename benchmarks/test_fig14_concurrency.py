"""Figure 14: Concurrent execution of 2x HV2 + LV1 + LV2 streams (150 nodes).

Paper: "the HV2 queries take about twice the time (5:53.75 and 5:53.71)
as they would if running alone ... The first queries in the low volume
streams execute in about 30 seconds, but each of their second queries
seems to get 'stuck' in queues.  Later queries in the streams finish
faster."  The mechanism is FIFO worker queues with no query-cost model
plus query skew.
"""

import numpy as np

from repro.sim import (
    SimulatedCluster,
    hv2_job,
    lv1_job,
    lv2_job,
    paper_cluster,
    paper_data_scale,
)

from _series import emit, format_series


def simulate_fig14():
    scale = paper_data_scale()
    spec = paper_cluster(150)
    chunks = range(scale.chunks_in_use(150))
    per_node = scale.object_bytes_per_node(150)

    # Solo HV2 reference (cached regime, like the figure's runs).
    solo = SimulatedCluster(spec)
    solo.warm_caches("Object", chunks, per_node)
    solo.submit(hv2_job(scale, spec))
    hv2_solo = solo.run()[0].elapsed

    c = SimulatedCluster(spec)
    c.warm_caches("Object", chunks, per_node)
    c.submit(hv2_job(scale, spec, name="HV2-a"))
    c.submit(hv2_job(scale, spec, name="HV2-b"))

    rng = np.random.default_rng(14)

    def stream(maker, count):
        state = {"i": 0}

        def submit_next(_=None):
            if state["i"] >= count:
                return
            i = state["i"]
            state["i"] += 1
            # "Each low volume stream paused for 1 second between queries."
            c.submit(maker(i), at=c.sim.now + 1.0, on_complete=submit_next)

        submit_next()

    stream(
        lambda i: lv1_job(
            scale, spec, chunk_id=int(rng.integers(0, 8987)), name=f"LV1-{i}"
        ),
        10,
    )
    stream(
        lambda i: lv2_job(
            scale, spec, chunk_id=int(rng.integers(0, 8987)), name=f"LV2-{i}"
        ),
        10,
    )
    outcomes = c.run()
    return hv2_solo, outcomes


def test_fig14_concurrency(benchmark):
    hv2_solo, outcomes = benchmark.pedantic(simulate_fig14, rounds=1, iterations=1)
    by_name = {o.name: o for o in outcomes}
    lv1 = [by_name[f"LV1-{i}"].elapsed for i in range(10)]
    lv2 = [by_name[f"LV2-{i}"].elapsed for i in range(10)]
    rows = [
        ("HV2 solo (reference)", hv2_solo),
        ("HV2-a concurrent", by_name["HV2-a"].elapsed),
        ("HV2-b concurrent", by_name["HV2-b"].elapsed),
        ("LV1 stream (first)", lv1[0]),
        ("LV1 stream (stuck)", max(lv1)),
        ("LV1 stream (last)", lv1[-1]),
        ("LV2 stream (first)", lv2[0]),
        ("LV2 stream (stuck)", max(lv2)),
        ("LV2 stream (last)", lv2[-1]),
    ]
    emit(
        "fig14_concurrency",
        format_series(
            "Figure 14: concurrent 2x HV2 + LV streams on 150 nodes "
            "(paper: HV2 ~2x solo; early LV queries stuck in FIFO queues, later ones fast)",
            ["measurement", "seconds"],
            rows,
        ),
    )
    # HV2s take ~2x their solo time (full scans competing, no shared scanning).
    for name in ("HV2-a", "HV2-b"):
        assert by_name[name].elapsed > 1.7 * hv2_solo
        assert by_name[name].elapsed < 2.4 * hv2_solo
    # Early LV queries get stuck behind scans; later ones are fast.
    assert max(max(lv1), max(lv2)) > 60.0
    assert lv1[-1] < 6.0 and lv2[-1] < 6.0
