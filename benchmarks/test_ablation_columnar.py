"""Ablation (section 7.4): columnar vs row-oriented storage layout.

"We are exploring the use of a columnar RDBMS like MonetDB instead of
MySQL ... A columnar organization is likely to speed joins and overall
query performance for the wide tables we use."  Measured for real: the
HV2 color-cut predicate evaluated over a wide Object table stored as
contiguous columns (this repo's engine; MonetDB-style) vs as one
C-contiguous structured array (row-major; MyISAM-style), where touching
two of many columns strides across every row.
"""

import time

import numpy as np

from repro.data import synthesize_objects
from repro.sql.functions import flux_to_ab_mag

from _series import emit, format_series

N_ROWS = 400_000
REPEATS = 5


def predicate_columnar(cols):
    i_mag = flux_to_ab_mag(cols["iFlux_PS"])
    z_mag = flux_to_ab_mag(cols["zFlux_PS"])
    return int(np.count_nonzero(i_mag - z_mag > 0.3))


def predicate_rowstore(rows):
    # Field access on a structured array yields strided views; the
    # vectorized math then walks the full row stride per element.
    i_mag = flux_to_ab_mag(rows["iFlux_PS"])
    z_mag = flux_to_ab_mag(rows["zFlux_PS"])
    return int(np.count_nonzero(i_mag - z_mag > 0.3))


def measure():
    table = synthesize_objects(N_ROWS, seed=74)
    # Widen the table: real Object rows are ~2 kB wide; pad to ~50
    # columns so the row stride dwarfs the two columns touched.
    cols = dict(table.columns())
    rng = np.random.default_rng(0)
    for i in range(35):
        cols[f"pad{i:02d}"] = rng.random(N_ROWS)
    from repro.sql import Table

    wide = Table("Object", cols)
    row_store = wide.to_row_store()
    col_store = wide.columns()

    def best_of(fn, arg):
        times = []
        for _ in range(REPEATS):
            t0 = time.perf_counter()
            result = fn(arg)
            times.append(time.perf_counter() - t0)
        return min(times), result

    t_col, n_col = best_of(predicate_columnar, col_store)
    t_row, n_row = best_of(predicate_rowstore, row_store)
    assert n_col == n_row, "layouts must agree on the answer"
    stride = row_store.dtype.itemsize
    return [
        ("columnar", t_col * 1000, N_ROWS * 16 / 1e6, n_col),
        ("row store", t_row * 1000, N_ROWS * stride / 1e6, n_row),
    ], t_row / t_col


def test_ablation_columnar(benchmark):
    rows, speedup = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [r + (f"{speedup:.1f}x" if r[0] == "columnar" else "1.0x",) for r in rows]
    emit(
        "ablation_columnar",
        format_series(
            f"Ablation: HV2 predicate over {N_ROWS} wide rows, columnar vs "
            "row-major layout (paper 7.4: columnar likely faster for wide tables)",
            ["layout", "time (ms)", "bytes touched (MB)", "matches", "speedup"],
            rows,
        ),
    )
    # Columnar wins on wide tables -- the 7.4 expectation, quantified.
    assert speedup > 1.5
