"""Figure 9: LV2 mean execution time vs node count (weak scaling).

Paper: flat ~4 s except a spike at 40 nodes "caused by 2 slow
executions (23 s and 57 s); the other 28 executions ... 4.09 to 4.11 s"
-- attributed to unrelated competing processes.
"""

import numpy as np

from repro.sim import lv2_job, paper_cluster, paper_data_scale

from _series import emit, format_series
from _simruns import run_lv_series


def simulate_fig09():
    scale = paper_data_scale()
    out = {}
    for nodes in (40, 100, 150):
        spec = paper_cluster(nodes)
        rng = np.random.default_rng(9)
        # The 40-node anomaly: two executions hit heavy competing work.
        interference = {5: 10, 17: 24} if nodes == 40 else {}

        def make_job(i, cold):
            chunk = int(rng.integers(0, scale.chunks_in_use(nodes)))
            return lv2_job(scale, spec, chunk_id=chunk)

        times = run_lv_series(
            spec, make_job, executions=30, interference_execs=interference
        )
        out[nodes] = times
    return out


def test_fig09_scaling_lv2(benchmark):
    series = benchmark.pedantic(simulate_fig09, rounds=1, iterations=1)
    rows = [
        (n, float(np.mean(t)), float(np.median(t)), max(t))
        for n, t in sorted(series.items())
    ]
    emit(
        "fig09_scaling_lv2",
        format_series(
            "Figure 9: LV2 mean execution time (s) vs node count "
            "(paper: flat ~4 s; 40-node spike from 2 anomalous executions)",
            ["nodes", "mean", "median", "max"],
            rows,
        ),
    )
    # The spike shows in the mean at 40 nodes...
    assert np.mean(series[40]) > np.mean(series[150]) * 1.2
    # ...but the medians are flat (<10% spread), matching the paper's
    # ">90% tightly bounded" observation.
    medians = [np.median(t) for t in series.values()]
    assert max(medians) / min(medians) < 1.1
    # The two anomalous executions are slow outliers.
    slow = sorted(series[40])[-2:]
    assert all(s > 10 for s in slow)
