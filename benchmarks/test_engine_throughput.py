"""Engine benchmarks: paired interpreter/kernel/mmap runs + micro rates.

The hpc-parallel ground rule: no optimization without measurement.
The paired harness runs the same queries through three per-node engine
configurations over identical seeded data --

- ``interpreter``: the vectorized expression walker (kernels off),
- ``kernel``: the fused compiled-kernel path (warm cache, as the czar
  sees it from the second chunk of a query on),
- ``kernel+mmap``: compiled kernels over an mmap-backed table whose
  on-disk size exceeds the residency budget --

verifies all three produce identical results, and records the medians
in ``benchmarks/out/BENCH_engine.json`` (uploaded as a CI artifact).

Gate: the fused filter+project+aggregate shape must be >= 5x faster
under compiled kernels than interpreted, no shape may regress, and the
mmap configuration must stay correct while hosting more data than its
residency budget.

The trailing micro-benches pin the paths the paired harness does not
cover (equi-join, indexed point lookup, dump serialization).
"""

from __future__ import annotations

import json
import statistics
import time

import numpy as np
import pytest

from repro.sql import Database, Table
from repro.sql.colstore import ColumnStore, ResidencyBudget

from _series import OUT_DIR, emit, format_series

N = 500_000
REPEATS = 7
MIN_FUSED_SPEEDUP = 5.0

# The HV2/HV3 hybrid the kernels exist for: multi-UDF color cut fused
# with box predicates, grouped aggregation on top.
FUSED_QUERY = (
    "SELECT chunkId, COUNT(*) AS n, AVG(ra_PS) AS ara FROM Object "
    "WHERE decl_PS BETWEEN -10 AND 2 AND ra_PS BETWEEN 30 AND 60 "
    "AND fluxToAbMag(uFlux_PS) - fluxToAbMag(gFlux_PS) BETWEEN 0.2 AND 1.1 "
    "AND fluxToAbMag(gFlux_PS) - fluxToAbMag(rFlux_PS) BETWEEN -0.5 AND 0.6 "
    "GROUP BY chunkId ORDER BY chunkId"
)

QUERIES = {
    "fused_filter_project_aggregate": FUSED_QUERY,
    "predicate_scan": (
        "SELECT objectId, ra_PS FROM Object "
        "WHERE fluxToAbMag(uFlux_PS) - fluxToAbMag(gFlux_PS) > 1.0"
    ),
    "grouped_aggregation": (
        "SELECT chunkId, COUNT(*) AS n, AVG(ra_PS), AVG(decl_PS) "
        "FROM Object GROUP BY chunkId"
    ),
    "conjunct_scan": (
        "SELECT objectId FROM Object "
        "WHERE ra_PS > 10 AND ra_PS < 350 AND decl_PS BETWEEN -45 AND 45 "
        "AND chunkId IN (3, 17, 44, 101, 170)"
    ),
}


def make_columns(rng) -> dict[str, np.ndarray]:
    return {
        "objectId": np.arange(N, dtype=np.int64),
        "chunkId": rng.integers(0, 200, N),
        "ra_PS": rng.uniform(0, 360, N),
        "decl_PS": rng.uniform(-90, 90, N),
        "uFlux_PS": rng.lognormal(-12, 1.3, N),
        "gFlux_PS": rng.lognormal(-12, 1.3, N),
        "rFlux_PS": rng.lognormal(-12, 1.3, N),
    }


def median_seconds(db: Database, sql: str) -> tuple[float, object]:
    result = db.execute(sql)  # warm-up (and kernel compile, first time)
    times = []
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        result = db.execute(sql)
        times.append(time.perf_counter() - t0)
    return statistics.median(times), result


def assert_identical(a, b, label):
    assert a.column_names == b.column_names, label
    assert a.num_rows == b.num_rows, label
    for name in a.column_names:
        ca, cb = a.column(name), b.column(name)
        assert ca.dtype == cb.dtype, f"{label}:{name}"
        np.testing.assert_array_equal(ca, cb, err_msg=f"{label}:{name}")


def test_engine_paired_benchmark(tmp_path):
    rng = np.random.default_rng(8)
    cols = make_columns(rng)

    db_interp = Database(use_kernels=False)
    db_interp.create_table(Table("Object", {k: v.copy() for k, v in cols.items()}))
    db_kernel = Database(use_kernels=True)
    db_kernel.create_table(Table("Object", {k: v.copy() for k, v in cols.items()}))

    # mmap config: on-disk size (7 cols x 8 B x 500k = 28 MB) far above
    # an 8 MB residency budget.
    budget = ResidencyBudget(max_bytes=8 * 1024 * 1024)
    store = ColumnStore(tmp_path, budget)
    db_mmap = Database(use_kernels=True)
    db_mmap.create_table(store.save_table(Table("Object", cols)))
    assert store.on_disk_bytes("Object") > budget.max_bytes

    results = {}
    rows_out = []
    for name, sql in QUERIES.items():
        ti, ri = median_seconds(db_interp, sql)
        tk, rk = median_seconds(db_kernel, sql)
        tm, rm = median_seconds(db_mmap, sql)
        assert_identical(ri, rk, name)
        assert_identical(ri, rm, name)
        results[name] = {
            "rows_scanned": N,
            "interpreter_s": round(ti, 6),
            "kernel_s": round(tk, 6),
            "kernel_mmap_s": round(tm, 6),
            "speedup_kernel": round(ti / tk, 2),
            "speedup_kernel_mmap": round(ti / tm, 2),
        }
        rows_out.append(
            (name, ti * 1e3, tk * 1e3, tm * 1e3, f"{ti / tk:.1f}x", f"{ti / tm:.1f}x")
        )

    entry = {
        "engine": {
            "rows": N,
            "repeats": REPEATS,
            "metric": "median seconds per query",
            "mmap_budget_bytes": budget.max_bytes,
            "mmap_on_disk_bytes": store.on_disk_bytes("Object"),
            "queries": results,
        }
    }
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_engine.json").write_text(json.dumps(entry, indent=2) + "\n")

    emit(
        "engine_kernels",
        format_series(
            f"Per-node engine, {N} rows (median of {REPEATS})",
            ["query", "interp (ms)", "kernel (ms)", "mmap (ms)", "speedup", "mmap speedup"],
            rows_out,
        ),
    )

    fused = results["fused_filter_project_aggregate"]
    assert fused["speedup_kernel"] >= MIN_FUSED_SPEEDUP, (
        f"fused kernel speedup regressed to {fused['speedup_kernel']}x "
        f"(gate: {MIN_FUSED_SPEEDUP}x); see BENCH_engine.json"
    )
    # Every shape must at least not regress under kernels.
    for name, r in results.items():
        assert r["speedup_kernel"] >= 1.0, f"{name} slower under kernels: {r}"


# -- micro rates not covered by the paired harness ----------------------------


@pytest.fixture(scope="module")
def db():
    rng = np.random.default_rng(8)
    d = Database()
    d.create_table(Table("Object", make_columns(rng)))
    d.create_table(
        Table(
            "Source",
            {
                "sourceId": np.arange(3 * N, dtype=np.int64),
                "objectId": rng.integers(0, N, 3 * N),
                "psfFlux": rng.lognormal(-12, 1.3, 3 * N),
            },
        )
    )
    return d


def test_equi_join_throughput(db, benchmark):
    """The SHV2 shape: Object x Source objectId join."""
    q = (
        "SELECT COUNT(*) FROM Object o, Source s "
        "WHERE o.objectId = s.objectId AND o.ra_PS < 36.0"
    )
    out = benchmark(db.execute, q)
    assert out.column("COUNT(*)")[0] > 0
    rate = 3 * N / benchmark.stats["mean"]
    assert rate > 5e5, f"join regressed to {rate / 1e6:.2f} Mrows/s"


def test_indexed_point_lookup(db, benchmark):
    """The LV1 shape: objectId = k through the hash index."""
    db.create_index("Object", "objectId")
    rng = np.random.default_rng(3)

    def one():
        oid = int(rng.integers(0, N))
        return db.execute(f"SELECT * FROM Object WHERE objectId = {oid}")

    out = benchmark(one)
    assert out.num_rows == 1
    # Point lookups must not scan: sub-millisecond.
    assert benchmark.stats["mean"] < 5e-3


def test_dump_throughput(db, benchmark):
    """The results-transfer shape: mysqldump of a 10k-row result."""
    from repro.sql import dump_table

    result = db.execute("SELECT objectId, ra_PS, decl_PS FROM Object LIMIT 10000")

    out = benchmark(dump_table, result)
    assert "INSERT INTO" in out
    rate = 10_000 / benchmark.stats["mean"]
    assert rate > 1e5, f"dump regressed to {rate / 1e3:.0f} krows/s"
