"""Engine micro-benchmarks: per-node scan/aggregate/join throughput.

The hpc-parallel ground rule: no optimization without measurement.
These benches pin the per-node engine's row rates so regressions on the
hot paths (vectorized predicate scan, grouped aggregation, sort-merge
equi-join, point lookup) are caught, and give the per-node numbers the
cluster model's CPU constants can be sanity-checked against.
"""

import numpy as np
import pytest

from repro.sql import Database, Table

N = 500_000


@pytest.fixture(scope="module")
def db():
    rng = np.random.default_rng(8)
    d = Database()
    d.create_table(
        Table(
            "Object",
            {
                "objectId": np.arange(N, dtype=np.int64),
                "ra_PS": rng.uniform(0, 360, N),
                "decl_PS": rng.uniform(-90, 90, N),
                "iFlux_PS": rng.lognormal(-12, 1.3, N),
                "zFlux_PS": rng.lognormal(-12, 1.3, N),
                "chunkId": rng.integers(0, 200, N),
            },
        )
    )
    d.create_table(
        Table(
            "Source",
            {
                "sourceId": np.arange(3 * N, dtype=np.int64),
                "objectId": rng.integers(0, N, 3 * N),
                "psfFlux": rng.lognormal(-12, 1.3, 3 * N),
            },
        )
    )
    return d


def test_predicate_scan_throughput(db, benchmark):
    """The HV2 shape: full scan with a UDF color predicate."""
    q = (
        "SELECT objectId, ra_PS FROM Object "
        "WHERE fluxToAbMag(iFlux_PS) - fluxToAbMag(zFlux_PS) > 1.0"
    )
    out = benchmark(db.execute, q)
    assert out.num_rows > 0
    rate = N / benchmark.stats["mean"]
    assert rate > 2e6, f"scan regressed to {rate / 1e6:.1f} Mrows/s"


def test_grouped_aggregation_throughput(db, benchmark):
    """The HV3 shape: GROUP BY with COUNT and AVGs."""
    q = "SELECT chunkId, COUNT(*) AS n, AVG(ra_PS), AVG(decl_PS) FROM Object GROUP BY chunkId"
    out = benchmark(db.execute, q)
    assert out.num_rows == 200
    rate = N / benchmark.stats["mean"]
    assert rate > 1e6, f"group-by regressed to {rate / 1e6:.1f} Mrows/s"


def test_equi_join_throughput(db, benchmark):
    """The SHV2 shape: Object x Source objectId join."""
    q = (
        "SELECT COUNT(*) FROM Object o, Source s "
        "WHERE o.objectId = s.objectId AND o.ra_PS < 36.0"
    )
    out = benchmark(db.execute, q)
    assert out.column("COUNT(*)")[0] > 0
    rate = 3 * N / benchmark.stats["mean"]
    assert rate > 5e5, f"join regressed to {rate / 1e6:.2f} Mrows/s"


def test_indexed_point_lookup(db, benchmark):
    """The LV1 shape: objectId = k through the hash index."""
    db.create_index("Object", "objectId")
    rng = np.random.default_rng(3)

    def one():
        oid = int(rng.integers(0, N))
        return db.execute(f"SELECT * FROM Object WHERE objectId = {oid}")

    out = benchmark(one)
    assert out.num_rows == 1
    # Point lookups must not scan: sub-millisecond.
    assert benchmark.stats["mean"] < 5e-3


def test_dump_throughput(db, benchmark):
    """The results-transfer shape: mysqldump of a 10k-row result."""
    from repro.sql import dump_table

    result = db.execute("SELECT objectId, ra_PS, decl_PS FROM Object LIMIT 10000")

    out = benchmark(dump_table, result)
    assert "INSERT INTO" in out
    rate = 10_000 / benchmark.stats["mean"]
    assert rate > 1e5, f"dump regressed to {rate / 1e3:.0f} krows/s"
