"""Figure 8: LV1 mean execution time vs node count (weak scaling).

Paper: flat at ~4 s across 40/100/150 nodes -- "execution time is
unaffected by node count given that the data per node is constant".
"""

import numpy as np

from repro.sim import lv1_job, paper_cluster, paper_data_scale

from _series import emit, format_series
from _simruns import run_lv_series


def simulate_fig08():
    scale = paper_data_scale()
    means = {}
    for nodes in (40, 100, 150):
        spec = paper_cluster(nodes)
        rng = np.random.default_rng(8)

        def make_job(i, cold):
            chunk = int(rng.integers(0, scale.chunks_in_use(nodes)))
            return lv1_job(scale, spec, chunk_id=chunk)

        times = run_lv_series(spec, make_job, executions=20)
        means[nodes] = float(np.mean(times))
    return means


def test_fig08_scaling_lv1(benchmark):
    means = benchmark.pedantic(simulate_fig08, rounds=1, iterations=1)
    rows = [(n, t) for n, t in sorted(means.items())]
    emit(
        "fig08_scaling_lv1",
        format_series(
            "Figure 8: LV1 mean execution time (s) vs node count (paper: flat ~4 s)",
            ["nodes", "mean seconds"],
            rows,
        ),
    )
    values = list(means.values())
    assert max(values) / min(values) < 1.05  # flat
    for v in values:
        assert 3.0 < v < 5.0
