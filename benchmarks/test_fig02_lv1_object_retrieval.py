"""Figure 2: Performance on Low Volume 1 (object retrieval by objectId).

Paper: 7 runs x 20 executions; ~4 s flat; Runs 1 and 4 at ~9 s from
competing cluster tasks; Run 5 starts at ~8 s from cold caches.

Regenerated two ways: (a) the calibrated timing model replays the runs
with the paper's own outlier mechanisms injected; (b) the real
in-process cluster executes the actual query as a functional benchmark.
"""

import numpy as np
import pytest

from repro.sim import lv1_job, paper_cluster, paper_data_scale

from _series import emit, format_series
from _simruns import run_lv_series


def simulate_fig02():
    scale = paper_data_scale()
    spec = paper_cluster(150)
    rng = np.random.default_rng(2)
    runs = {}
    for run in range(1, 8):
        # Paper narrative: runs 1 and 4 suffered cluster interference on
        # every execution; run 5 began against cold caches.
        interference = {}
        cold = set()
        if run in (1, 4):
            interference = {i: 4 for i in range(20)}
        if run == 5:
            cold = {0}

        def make_job(i, is_cold, run=run):
            chunk = int(rng.integers(0, scale.chunks_in_use(150)))
            return lv1_job(scale, spec, chunk_id=chunk, cold=is_cold, name=f"LV1-r{run}e{i}")

        runs[run] = run_lv_series(
            spec, make_job, executions=20, interference_execs=interference, cold_execs=cold
        )
    return runs


def test_fig02_lv1_series(benchmark):
    runs = simulate_fig02()
    benchmark.pedantic(
        lambda: run_lv_series(
            paper_cluster(150),
            lambda i, c: lv1_job(paper_data_scale(), paper_cluster(150), chunk_id=i),
            executions=3,
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        (f"Run{r}", min(ts), float(np.mean(ts)), max(ts)) for r, ts in runs.items()
    ]
    emit(
        "fig02_lv1",
        format_series(
            "Figure 2: LV1 execution time (s) per run (paper: ~4 s, runs 1/4 ~9 s, run 5 cold start ~8 s)",
            ["run", "min", "mean", "max"],
            rows,
        ),
    )
    # Shape: clean runs sit near 4 s...
    for r in (2, 3, 6, 7):
        assert 3.0 < np.mean(runs[r]) < 5.0
    # ...interfered runs are visibly slower...
    for r in (1, 4):
        assert np.mean(runs[r]) > np.mean(runs[2]) * 1.5
    # ...and run 5's first execution shows the cold-cache bump.
    assert runs[5][0] > np.mean(runs[5][1:]) * 1.5
    assert 3.0 < np.mean(runs[5][1:]) < 5.0


def test_lv1_functional(testbed, object_ids, rng, benchmark):
    """The real stack answering the paper's LV1 query."""
    ids = rng.choice(object_ids, 50)

    def one():
        oid = int(rng.choice(ids))
        r = testbed.query(f"SELECT * FROM Object WHERE objectId = {oid}")
        assert r.table.num_rows == 1
        return r

    result = benchmark(one)
    assert result.stats.chunks_dispatched == 1  # secondary index at work
