"""Ablation (section 7.5): HTM vs rectangular (ra, dec) partitioning.

"The rectangular fragmentation in right ascension and declination,
while convenient to visualize physically for humans, is problematic due
to severe distortion near the poles."  Three schemes compared at
similar partition counts:

- a naive fixed (ra, dec) grid (what "rectangular fragmentation" means
  without Qserv's per-stripe width adaptation);
- Qserv's chunker (per-stripe chunk counts scaled by cos(dec)) -- this
  already equalizes *area* well, but its polar chunks degenerate into
  360-degree-wide slivers (shape distortion);
- HTM trixels, whose areas vary ~2x but whose shapes stay compact
  everywhere (bounded diameter), enabling the finer-grained I/O the
  paper wants.
"""

import numpy as np

from repro.partition import Chunker
from repro.sphgeom import HtmPixelization, SphericalBox, angular_separation

from _series import emit, format_series


def _box_diameter(box: SphericalBox) -> float:
    """Largest great-circle extent of a lat/long box (deg)."""
    # Width along the wider (equator-nearest) edge plus the diagonal.
    dec_edge = box.dec_min if abs(box.dec_min) < abs(box.dec_max) else box.dec_max
    width = angular_separation(box.ra_min, dec_edge, box.ra_min + box.ra_extent(), dec_edge)
    diag = angular_separation(box.ra_min, box.dec_min, box.ra_min + box.ra_extent(), box.dec_max)
    return float(max(width, diag, box.dec_extent()))


def measure():
    rng = np.random.default_rng(75)

    # Naive fixed grid with ~8960 cells (64 dec x 140 ra).
    n_dec, n_ra = 64, 140
    dec_edges = np.linspace(-90, 90, n_dec + 1)
    sample_rows = rng.integers(0, n_dec, 600)
    grid_areas = []
    grid_diams = []
    for r in sample_rows:
        box = SphericalBox(0, dec_edges[r], 360.0 / n_ra, dec_edges[r + 1])
        grid_areas.append(box.area())
        grid_diams.append(_box_diameter(box))
    grid_areas = np.array(grid_areas)

    # Qserv chunker, 8987 chunks.
    chunker = Chunker(85, 12)
    sample = rng.choice(chunker.all_chunks(), 600, replace=False)
    # Ensure the polar chunks are included: they are the distorted ones.
    polar = [int(chunker.all_chunks()[0]), int(chunker.all_chunks()[-1])]
    chunk_ids = list(sample) + polar
    chunk_boxes = [chunker.chunk_box(int(c)) for c in chunk_ids]
    chunk_areas = np.array([b.area() for b in chunk_boxes])
    chunk_diams = [_box_diameter(b) for b in chunk_boxes]

    # HTM level 5: 8192 trixels.
    pix = HtmPixelization(5)
    lo, hi = pix.id_range()
    tri_ids = rng.integers(lo, hi, 600)
    tri_areas = np.array([pix.trixel_area(int(t)) for t in tri_ids])
    tri_diams = []
    for t in tri_ids:
        verts = pix.trixel_vertices(int(t))
        from repro.sphgeom.coords import angular_separation_vectors

        d = max(
            float(angular_separation_vectors(verts[i], verts[j]))
            for i in range(3)
            for j in range(i + 1, 3)
        )
        tri_diams.append(d)

    def row(name, areas, diams):
        return (
            name,
            float(areas.max() / areas.min()),
            float(np.std(areas) / np.mean(areas)),
            float(np.max(diams)),
        )

    return [
        row("naive grid", grid_areas, grid_diams),
        row("qserv chunker", chunk_areas, chunk_diams),
        row("HTM level 5", tri_areas, tri_diams),
    ]


def test_ablation_partitioning(benchmark):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        "ablation_partitioning",
        format_series(
            "Ablation: partitioning schemes at ~8-9k partitions "
            "(paper 7.5: rectangular fragmentation distorts near the poles)",
            ["scheme", "area max/min", "area cv", "worst diameter (deg)"],
            rows,
        ),
    )
    by = {r[0]: r for r in rows}
    # The naive rectangular grid's area spread is catastrophic near the
    # poles (the section 7.5 complaint); the cos(dec)-adaptive chunker
    # mitigates it, and HTM's worst case is smaller still.
    assert by["naive grid"][1] > 20
    assert by["qserv chunker"][1] < 5
    assert by["HTM level 5"][1] < 3
    assert by["HTM level 5"][1] < by["qserv chunker"][1]
    # Shape: every scheme's partitions stay compact (a near-polar
    # full-RA chunk is a small cap, not a sliver) -- the measured
    # outcome that narrows 7.5's case for HTM to area uniformity plus
    # its hierarchical integer ids.
    for name in ("qserv chunker", "HTM level 5"):
        assert by[name][3] < 10
