"""Ablation (section 5.4): caching on-the-fly sub-chunk tables.

"This enables the worker to cache subchunk tables, although the current
implementation does not cache them."  Measured on the real stack:
repeated near-neighbor queries over the same region with worker
sub-chunk caching off (the paper's shipped behavior) vs on.
"""

import time

from repro.data import build_testbed

from _series import emit, format_series

SQL_TEMPLATE = (
    "SELECT count(*) FROM Object o1, Object o2 "
    "WHERE qserv_areaspec_box(0, -7, 4, -1) "
    "AND qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < {dist}"
)
REPEATS = 4


def run_mode(cache: bool):
    tb = build_testbed(num_workers=2, num_objects=2500, seed=83)
    for worker in tb.workers.values():
        worker.cache_sub_chunks = cache
    # Slightly different distances so the worker's *result* cache can
    # never kick in: only table reuse is being measured.
    base = tb.chunker.overlap * 0.9
    answers = []
    t0 = time.perf_counter()
    for i in range(REPEATS):
        sql = SQL_TEMPLATE.format(dist=base * (1 - 1e-9 * i))
        answers.append(int(tb.query(sql).table.column("count(*)")[0]))
    elapsed = time.perf_counter() - t0
    built = sum(w.stats.sub_chunk_tables_built for w in tb.workers.values())
    hits = sum(w.stats.sub_chunk_cache_hits for w in tb.workers.values())
    assert len(set(answers)) == 1, "caching must not change answers"
    return elapsed, built, hits, answers[0]


def test_ablation_subchunk_cache(benchmark):
    results = benchmark.pedantic(
        lambda: {c: run_mode(c) for c in (False, True)}, rounds=1, iterations=1
    )
    rows = [
        (
            "cache on" if cache else "drop after use (paper)",
            elapsed,
            built,
            hits,
        )
        for cache, (elapsed, built, hits, _) in results.items()
    ]
    emit(
        "ablation_subchunk_cache",
        format_series(
            f"Ablation: sub-chunk table caching, {REPEATS} repeated near-neighbor "
            "queries (paper 5.4: workers may cache sub-chunk tables)",
            ["policy", "total seconds", "tables built", "cache hits"],
            rows,
        ),
    )
    no_cache = results[False]
    cached = results[True]
    # Without caching, every repeat rebuilds every sub-chunk table.
    assert no_cache[1] == REPEATS * (cached[1])
    # With caching, repeats hit the cache instead.
    assert cached[2] == (REPEATS - 1) * cached[1]
    # Identical answers in both modes.
    assert no_cache[3] == cached[3]
