"""Figure 4: Performance on Low Volume 3 (spatially-restricted filter).

Paper: 4 runs, ~4 s flat; Run 2's ~9 s executions "could not be
reproduced so we discount it as resulting from competing processes".
The box is randomized within +-20 deg declination of the equator.
"""

import numpy as np

from repro.sim import SimulatedCluster, lv3_job, paper_cluster, paper_data_scale

from _series import emit, format_series
from _simruns import run_lv_series


def simulate_fig04():
    scale = paper_data_scale()
    spec = paper_cluster(150)
    rng = np.random.default_rng(4)
    runs = {}
    for run in range(1, 5):
        interference = {i: 4 for i in range(17)} if run == 2 else {}

        def make_job(i, is_cold, run=run):
            chunk = int(rng.integers(0, scale.chunks_in_use(150)))
            job = lv3_job(scale, spec, chunk_id=chunk, name=f"LV3-r{run}e{i}")
            return job

        # LV3 scans its chunk; the cluster's caches are warm for Object
        # (interactive mixes had been running all along).
        runs[run] = _warm_series(spec, scale, make_job, 17, interference)
    return runs


def _warm_series(spec, scale, make_job, executions, interference):
    times = []
    from _simruns import interference_job

    c = SimulatedCluster(spec)
    c.warm_caches("Object", range(scale.chunks_in_use(150)), scale.object_bytes_per_node(150))
    clock = 0.0
    for i in range(executions):
        job = make_job(i, False)
        if i in interference:
            node = job.tasks[0].chunk_id % spec.num_nodes
            c.submit(interference_job(node, interference[i], scale), at=clock)
        done = {}
        c.submit(job, at=clock, on_complete=lambda o: done.update(t=o.elapsed))
        c.run()
        times.append(done["t"])
        clock = c.sim.now + 1.0
    return times


def test_fig04_lv3_series(benchmark):
    runs = benchmark.pedantic(simulate_fig04, rounds=1, iterations=1)
    rows = [(f"Run{r}", min(t), float(np.mean(t)), max(t)) for r, t in runs.items()]
    emit(
        "fig04_lv3",
        format_series(
            "Figure 4: LV3 execution time (s) per run (paper: ~4 s; Run 2 anomalous ~9 s)",
            ["run", "min", "mean", "max"],
            rows,
        ),
    )
    for r in (1, 3, 4):
        assert 3.0 < np.mean(runs[r]) < 5.0
    assert np.mean(runs[2]) > np.mean(runs[1]) * 1.5


def test_lv3_functional(testbed, rng, benchmark):
    """The real stack: box count + color cuts + aggregation rewrite."""

    def one():
        ra0 = float(rng.uniform(0, 350))
        dec0 = float(rng.uniform(-20, 19))
        return testbed.query(
            "SELECT COUNT(*) FROM Object "
            f"WHERE ra_PS BETWEEN {ra0} AND {ra0 + 1} "
            f"AND decl_PS BETWEEN {dec0} AND {dec0 + 1} "
            "AND fluxToAbMag(zFlux_PS) BETWEEN 15 AND 30"
        )

    result = benchmark(one)
    assert result.table.num_rows == 1
