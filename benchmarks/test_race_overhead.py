"""Race-sanitizer overhead benchmark: what vector-clock tracking costs.

Two measurements, one gate:

- **Suite overhead (the <10% gate).**  The acceptance budget for
  ``REPRO_SANITIZE=race:report`` is what it adds to a CI suite run, so
  that is what the gate times: the frontend/jobs/cancel suites in a
  subprocess, plain vs race:report, order-alternated pairs, median
  per-pair wall-clock ratio.  The race-mode runs must also *pass*,
  which doubles as a cleanliness gate on the instrumented suites.

- **Hot-path ratio (reported, loosely bounded).**  A full czar
  dispatch measured in-process with the paired methodology of
  ``test_obs_overhead.py`` (back-to-back runs, alternating order,
  median of per-pair ratios).  Every tracked access here pays the
  descriptor plus the FastTrack engine -- epoch compares on the fast
  path, stack capture and lock-set snapshot on the slow path -- so
  this is the detector's worst case, not its typical cost.  A pure
  Python vector-clock engine floors around ~35% on this loop (the
  literature's compiled FastTrack implementations report 2-8x
  slowdowns); the bound only catches pathological regressions such as
  re-serializing stack capture under the engine mutex.

Results land in ``benchmarks/out/BENCH_race_overhead.json``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from repro.analysis import races
from repro.data import build_testbed

from _series import OUT_DIR, emit, format_series

REPO_ROOT = Path(__file__).resolve().parent.parent
SUITES = [
    "tests/qserv/test_frontend.py",
    "tests/qserv/test_jobs.py",
    "tests/qserv/test_cancel.py",
]
SUITE_PAIRS = 3
SUITE_LIMIT_PCT = 10.0

QUERY = (
    "SELECT COUNT(*), AVG(uFlux_PS), AVG(gFlux_PS), AVG(rFlux_PS), "
    "AVG(iFlux_PS), AVG(zFlux_PS) FROM Object WHERE rFlux_PS + gFlux_PS > 0"
)
RUNS = 31
HOTPATH_LIMIT_PCT = 75.0


# -- suite overhead: the CI budget gate ---------------------------------------------


def timed_suite_run(race: bool) -> float:
    env = dict(os.environ, PYTHONPATH="src")
    env.pop("REPRO_SANITIZE", None)
    if race:
        env["REPRO_SANITIZE"] = "race:report"
    t0 = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", *SUITES, "-q", "-p", "no:cacheprovider"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )
    elapsed = time.perf_counter() - t0
    assert proc.returncode == 0, (
        f"suite {'race:report' if race else 'plain'} run failed:\n"
        + proc.stdout[-2000:]
    )
    return elapsed


def suite_overhead():
    timed_suite_run(race=False)  # warm caches off the measurement
    ratios, race_s, plain_s = [], [], []
    for i in range(SUITE_PAIRS):
        if i % 2 == 0:
            a, b = timed_suite_run(race=True), timed_suite_run(race=False)
        else:
            b, a = timed_suite_run(race=False), timed_suite_run(race=True)
        race_s.append(a)
        plain_s.append(b)
        ratios.append(a / b)
    overhead_pct = (float(np.median(ratios)) - 1.0) * 100.0
    return float(np.min(race_s)), float(np.min(plain_s)), overhead_pct


# -- hot-path ratio: the detector's worst case --------------------------------------


def timed_query(tb, expected_rows: int) -> float:
    t0 = time.perf_counter()
    r = tb.query(QUERY)
    elapsed = time.perf_counter() - t0
    assert len(r.rows()) == expected_rows
    return elapsed


def paired_overhead(tb, expected_rows, configure_a, configure_b):
    """Median per-pair latency ratio (a/b - 1) * 100, order-alternated."""
    ratios = []
    a_samples, b_samples = [], []
    for i in range(RUNS):
        first, second = (configure_a, configure_b) if i % 2 == 0 else (
            configure_b,
            configure_a,
        )
        first()
        x = timed_query(tb, expected_rows)
        second()
        y = timed_query(tb, expected_rows)
        a, b = (x, y) if i % 2 == 0 else (y, x)
        a_samples.append(a)
        b_samples.append(b)
        ratios.append(a / b)
    overhead_pct = (float(np.median(ratios)) - 1.0) * 100.0
    return float(np.min(a_samples)), float(np.min(b_samples)), overhead_pct


def hotpath_overhead():
    # The testbed must be built with the engine ON: ``make_lock`` picks
    # plain vs sanitized at construction time, and the detector needs
    # sanitized locks for its happens-before edges.  The per-pair
    # ``disable()`` below removes the attribute descriptors (the real
    # cost) while the inert lock wrappers stay -- matching how a
    # default CI run differs from a ``REPRO_SANITIZE=race:report`` one.
    races.enable(report=True)
    tb = build_testbed(num_workers=3, num_objects=3000, seed=42)
    try:
        sanitized = lambda: races.enable(report=True)  # noqa: E731
        plain = races.disable

        # Warm the plan caches and count result rows once.
        plain()
        r = tb.query(QUERY)
        expected_rows = len(r.rows())
        total_chunks = r.stats.chunks_dispatched
        for _ in range(3):
            timed_query(tb, expected_rows)

        # Noise floor: off against off.
        _, _, control_pct = paired_overhead(tb, expected_rows, plain, plain)

        # The real cost: report-mode tracking against off.
        traced_s, plain_s, overhead_pct = paired_overhead(
            tb, expected_rows, sanitized, plain
        )

        # Cleanliness: the instrumented dispatch path reported nothing.
        races.enable(report=True)
        tb.query(QUERY)
        violations = races.race_report()
    finally:
        races.disable()
        tb.shutdown()
    return {
        "chunks": total_chunks,
        "control_pct": control_pct,
        "sanitized_best_s": traced_s,
        "plain_best_s": plain_s,
        "overhead_pct": overhead_pct,
        "violations": violations,
    }


def test_race_report_overhead_under_limit():
    suite_race_s, suite_plain_s, suite_pct = suite_overhead()
    hot = hotpath_overhead()

    entry = {
        "race_overhead": {
            "suites": SUITES,
            "suite_pairs": SUITE_PAIRS,
            "suite_race_best_s": round(suite_race_s, 3),
            "suite_plain_best_s": round(suite_plain_s, 3),
            "suite_overhead_pct": round(suite_pct, 2),
            "suite_limit_pct": SUITE_LIMIT_PCT,
            "hotpath_query": QUERY,
            "hotpath_chunks": hot["chunks"],
            "hotpath_runs": RUNS,
            "hotpath_control_pct": round(hot["control_pct"], 2),
            "hotpath_sanitized_best_s": round(hot["sanitized_best_s"], 6),
            "hotpath_plain_best_s": round(hot["plain_best_s"], 6),
            "hotpath_overhead_pct": round(hot["overhead_pct"], 2),
            "hotpath_limit_pct": HOTPATH_LIMIT_PCT,
            "violations": len(hot["violations"]),
        }
    }
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_race_overhead.json").write_text(
        json.dumps(entry, indent=2) + "\n"
    )

    emit(
        "BENCH_race_overhead",
        format_series(
            f"Race-sanitizer overhead (suite gate <{SUITE_LIMIT_PCT:.0f}%, "
            f"{SUITE_PAIRS} suite pairs / {RUNS} query pairs)",
            ["measurement", "best", "overhead"],
            [
                (
                    "frontend+jobs+cancel suites",
                    f"{suite_plain_s:.2f}s -> {suite_race_s:.2f}s",
                    f"{suite_pct:+.2f}%",
                ),
                (
                    "czar dispatch hot path",
                    f"{hot['plain_best_s'] * 1e3:.2f}ms -> "
                    f"{hot['sanitized_best_s'] * 1e3:.2f}ms",
                    f"{hot['overhead_pct']:+.2f}% "
                    f"(noise {hot['control_pct']:+.2f}%)",
                ),
            ],
        ),
    )

    assert hot["violations"] == [], "\n\n".join(
        str(v) for v in hot["violations"]
    )
    assert abs(hot["control_pct"]) < SUITE_LIMIT_PCT, (
        f"noise floor {hot['control_pct']:+.2f}% swamps the measurement"
    )
    assert suite_pct < SUITE_LIMIT_PCT, (
        f"race:report suite overhead {suite_pct:.2f}% >= {SUITE_LIMIT_PCT}%"
    )
    assert hot["overhead_pct"] < HOTPATH_LIMIT_PCT, (
        f"hot-path overhead {hot['overhead_pct']:.2f}% >= {HOTPATH_LIMIT_PCT}% "
        "-- a pathological regression (stack capture under the engine "
        "mutex, lost epoch fast path?)"
    )
