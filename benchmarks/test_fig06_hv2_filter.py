"""Figure 6: Performance of High Volume 2 (full-sky filter scan).

Paper: 2.5-3 minutes per execution on 150 nodes for cached runs; the
7-minute Run-3 execution "may be a more accurate measure of uncached
execution time".  Effective scan bandwidth: 76 MB/s/node cached, 27
MB/s/node uncached (4.0-11 GB/s aggregate).
"""

import numpy as np

from repro.sim import SimulatedCluster, hv2_job, paper_cluster, paper_data_scale

from _series import emit, format_series


def simulate_fig06():
    scale = paper_data_scale()
    spec = paper_cluster(150)
    chunks = range(scale.chunks_in_use(150))
    per_node = scale.object_bytes_per_node(150)

    def run_once(warm):
        c = SimulatedCluster(spec)
        if warm:
            c.warm_caches("Object", chunks, per_node)
        c.submit(hv2_job(scale, spec))
        return c.run()[0].elapsed

    # Paper runs: caching "not controlled"; we show both regimes plus
    # the aggregate-bandwidth arithmetic the paper reports.
    uncached = run_once(False)
    cached = run_once(True)
    agg_uncached = scale.object_bytes / uncached / 1e9
    agg_cached = scale.object_bytes / cached / 1e9
    return uncached, cached, agg_uncached, agg_cached


def test_fig06_hv2_series(benchmark):
    uncached, cached, agg_unc, agg_c = benchmark.pedantic(
        simulate_fig06, rounds=1, iterations=1
    )
    rows = [
        ("cached", cached, cached / 60.0, agg_c, agg_c / 150 * 1000),
        ("uncached", uncached, uncached / 60.0, agg_unc, agg_unc / 150 * 1000),
    ]
    emit(
        "fig06_hv2",
        format_series(
            "Figure 6: HV2 full-sky filter (paper: 2.5-3 min cached / ~7 min uncached; 11 / 4.0 GB/s aggregate)",
            ["regime", "seconds", "minutes", "agg GB/s", "MB/s/node"],
            rows,
        ),
    )
    assert 2.2 * 60 < cached < 3.5 * 60
    assert 6 * 60 < uncached < 9 * 60
    # The paper's bandwidth arithmetic: ~11 GB/s cached, ~4 GB/s uncached.
    assert 9.0 < agg_c < 13.0
    assert 3.0 < agg_unc < 5.0


def test_hv2_functional(testbed, benchmark):
    """Real stack: full-table-scan filter over every chunk."""

    def one():
        return testbed.query(
            "SELECT objectId, ra_PS, decl_PS, uFlux_PS, gFlux_PS, rFlux_PS, "
            "iFlux_PS, zFlux_PS, yFlux_PS FROM Object "
            "WHERE fluxToAbMag(iFlux_PS) - fluxToAbMag(zFlux_PS) > 0.5"
        )

    result = benchmark(one)
    assert result.stats.chunks_dispatched == len(testbed.placement.chunk_ids)
