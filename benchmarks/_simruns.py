"""Shared simulation-run helpers for the figure benches.

The low-volume figures (2-4, 8-10) show runs of repeated executions
with occasional slow outliers the paper attributes to "competing tasks
in the cluster" and cold caches.  These helpers model exactly those
mechanisms: executions run back-to-back on a fresh or shared cluster,
interference is injected as real competing scan jobs pinned to the
probed node, and cold caches are the workload builders' ``cold`` flag.
"""

from __future__ import annotations

import numpy as np

from repro.sim import (
    ChunkTask,
    QueryJob,
    SimulatedCluster,
    paper_cluster,
    paper_data_scale,
)

__all__ = ["run_solo", "run_lv_series", "warm_object", "interference_job"]


def run_solo(spec, job, warm=None):
    """One query on an otherwise idle cluster; returns elapsed seconds."""
    c = SimulatedCluster(spec)
    if warm is not None:
        scale, dataset = warm
        c.warm_caches(
            dataset,
            range(scale.chunks_in_use(spec.num_nodes)),
            scale.object_bytes_per_node(spec.num_nodes),
        )
    c.submit(job)
    return c.run()[0].elapsed


def interference_job(
    node: int,
    scans: int,
    scale,
    bytes_per_scan: float = 60e6,
    name: str = "interference",
):
    """Competing work pinned to one node ("competing tasks in the cluster").

    ``scans`` tasks occupy the node's slots; a probe arriving behind a
    full slot set waits for the first one to drain.  Four 60 MB scans
    contending on a cold disk hold a slot for ~9 s -- turning a 4 s
    low-volume query into the paper's ~9 s outlier.
    """
    tasks = [
        ChunkTask(
            chunk_id=i,
            scan_bytes=bytes_per_scan,
            node=node,
            result_bytes=0.0,
        )
        for i in range(scans)
    ]
    # Interference is already running cluster work, not a fresh user
    # query: no frontend latency, so its tasks hold the slots by the
    # time the probe arrives.
    return QueryJob(name=name, tasks=tasks, frontend_latency=0.0)


def run_lv_series(
    spec,
    make_job,
    executions: int,
    interference_execs: dict[int, int] | None = None,
    cold_execs: set[int] | None = None,
    rng: np.random.Generator | None = None,
):
    """A run of back-to-back low-volume executions on one cluster.

    ``make_job(i, cold)`` builds execution ``i``; ``interference_execs``
    maps execution index -> number of competing scans injected on the
    probed node; ``cold_execs`` marks executions probing cold caches.
    """
    scale = paper_data_scale()
    interference_execs = interference_execs or {}
    cold_execs = cold_execs or set()
    rng = rng or np.random.default_rng(0)

    times: list[float] = []
    c = SimulatedCluster(spec)
    clock = 0.0
    for i in range(executions):
        job = make_job(i, i in cold_execs)
        if i in interference_execs:
            node = job.tasks[0].chunk_id % spec.num_nodes
            c.submit(
                interference_job(node, interference_execs[i], scale),
                at=clock,
            )
        done = {}
        c.submit(job, at=clock, on_complete=lambda o: done.update(t=o.elapsed))
        c.run()
        times.append(done["t"])
        clock = c.sim.now + 1.0  # the paper's 1 s pause between queries
    return times
