"""Figure 10: LV3 mean execution time vs node count (weak scaling).

Paper: flat ~4 s; the 100-node point spikes because 6 of 24 executions
ran at 5.3-8.1 s ("likely ... unrelated competing cluster activity and
bugs in our implementation; 3 of the 6 times occurred in series,
indicating a longer-lasting transient").
"""

import numpy as np

from repro.sim import SimulatedCluster, lv3_job, paper_cluster, paper_data_scale

from _series import emit, format_series
from _simruns import interference_job


def simulate_fig10():
    scale = paper_data_scale()
    out = {}
    for nodes in (40, 100, 150):
        spec = paper_cluster(nodes)
        rng = np.random.default_rng(10)
        # The 100-node transient: competing work of varying weight fills
        # the probed node's slots across executions 8-10 ("3 of the 6
        # times occurred in series") plus three isolated hiccups.
        # Values are bytes per competing scan.
        interference = (
            {8: 20e6, 9: 18e6, 10: 12e6, 3: 10e6, 15: 25e6, 20: 9e6}
            if nodes == 100
            else {}
        )
        c = SimulatedCluster(spec)
        c.warm_caches(
            "Object",
            range(scale.chunks_in_use(nodes)),
            scale.object_bytes_per_node(nodes),
        )
        times = []
        clock = 0.0
        for i in range(24):
            chunk = int(rng.integers(0, scale.chunks_in_use(nodes)))
            job = lv3_job(scale, spec, chunk_id=chunk)
            if i in interference:
                # Competing work lands while the probe is in the
                # frontend (parse/plan) so the slots are taken when the
                # chunk query reaches the node.
                c.submit(
                    interference_job(
                        chunk % nodes, 4, scale, bytes_per_scan=interference[i]
                    ),
                    at=clock + 3.0,
                )
            done = {}
            c.submit(job, at=clock, on_complete=lambda o: done.update(t=o.elapsed))
            c.run()
            times.append(done["t"])
            clock = c.sim.now + 1.0
        out[nodes] = times
    return out


def test_fig10_scaling_lv3(benchmark):
    series = benchmark.pedantic(simulate_fig10, rounds=1, iterations=1)
    rows = [
        (n, float(np.mean(t)), float(np.median(t)), max(t))
        for n, t in sorted(series.items())
    ]
    emit(
        "fig10_scaling_lv3",
        format_series(
            "Figure 10: LV3 mean execution time (s) vs node count "
            "(paper: flat ~4 s; 100-node spike from 6 of 24 slow executions)",
            ["nodes", "mean", "median", "max"],
            rows,
        ),
    )
    assert np.mean(series[100]) > np.mean(series[150]) * 1.08
    medians = [np.median(t) for t in series.values()]
    assert max(medians) / min(medians) < 1.1
    slow = [t for t in series[100] if t > np.median(series[100]) * 1.25]
    assert 3 <= len(slow) <= 8  # the paper saw 6 of 24
