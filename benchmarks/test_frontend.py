"""Frontend overload benchmark: saturation must degrade into typed sheds.

Drives a small admission-controlled frontend at 3x its configured
saturation point (client threads = 3x the global concurrency slots)
with a mixed interactive/batch workload from three equal-weight
tenants, and gates on the overload-safety contract:

- every rejection is a typed ``QservOverloadError`` (quota subclass
  included) -- zero unhandled exceptions, zero hung client threads;
- p99 latency of *admitted* queries stays bounded (the queue-wait cap
  plus execution, not minutes of silent queueing);
- stride fair-share keeps per-tenant admitted throughput inside a
  fairness band (min/max tenant ratio);
- every batch job submitted during the storm still completes.

Results land in ``benchmarks/out/BENCH_frontend.json`` (uploaded as a
CI artifact).
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np

from repro.data import build_testbed
from repro.obs import events as obs_events
from repro.obs import timeseries as obs_timeseries
from repro.qserv import QservFrontend, QservOverloadError

from _series import OUT_DIR, emit, format_series

TENANTS = ["alice", "bob", "carol"]
MAX_CONCURRENT = 4
SATURATION_FACTOR = 3  # client threads per slot: >= 3x saturation
DURATION_S = 2.5
BATCH_JOBS = 6
P99_BOUND_S = 3.0
FAIRNESS_BAND = 0.4  # slowest tenant >= 40% of the fastest

QUERY = "SELECT COUNT(*) FROM Object"


def test_overload_storm_is_typed_fair_and_bounded(tmp_path):
    tb = build_testbed(num_workers=2, num_objects=800, seed=42)
    frontend = QservFrontend(
        tb.czar,
        root=tmp_path,
        max_concurrent=MAX_CONCURRENT,
        max_queue_depth=2,  # tight queue: the 3x surplus must be shed
        max_queue_wait=0.1,
        cache_entries=0,  # every query must face admission
    )

    n_threads = MAX_CONCURRENT * SATURATION_FACTOR
    latencies: dict[str, list] = {t: [] for t in TENANTS}
    sheds: dict[str, int] = {t: 0 for t in TENANTS}
    unexpected: list = []
    stop = threading.Event()

    def client(tenant: str):
        while not stop.is_set():
            t0 = time.perf_counter()
            try:
                frontend.query(QUERY, user=tenant, use_cache=False)
                latencies[tenant].append(time.perf_counter() - t0)
            except QservOverloadError:
                sheds[tenant] += 1
                time.sleep(0.005)  # honest client: brief backoff
            except BaseException as e:  # noqa: BLE001 - the gate counts anything untyped
                unexpected.append(f"{type(e).__name__}: {e}")
                return

    threads = [
        threading.Thread(target=client, args=(TENANTS[i % len(TENANTS)],))
        for i in range(n_threads)
    ]
    for t in threads:
        t.start()

    # Batch stream rides along mid-storm.
    job_ids = [
        frontend.submit_job(
            f"SELECT COUNT(*) FROM Object WHERE objectId > {k}",
            user="batch",
            table=f"storm_{k}",
        )
        for k in range(BATCH_JOBS)
    ]

    time.sleep(DURATION_S)
    stop.set()
    for t in threads:
        t.join(timeout=15)

    # Gate 1: no deadlocks, no untyped failures.
    hung = [i for i, t in enumerate(threads) if t.is_alive()]
    assert not hung, f"client threads hung: {hung}"
    assert not unexpected, unexpected

    # Gate 2: batch jobs all complete despite the storm.
    for job_id in job_ids:
        deadline = time.monotonic() + 60
        while frontend.poll_job(job_id)["status"] not in ("done", "failed", "cancelled"):
            assert time.monotonic() < deadline, f"{job_id} stuck"
            time.sleep(0.02)
        assert frontend.poll_job(job_id)["status"] == "done"

    all_lat = np.array([v for lats in latencies.values() for v in lats])
    assert all_lat.size > 0, "storm admitted nothing at all"
    p50 = float(np.percentile(all_lat, 50))
    p99 = float(np.percentile(all_lat, 99))

    # Gate 3: admitted-query tail latency stays bounded.
    assert p99 < P99_BOUND_S, f"p99 {p99:.3f}s exceeds {P99_BOUND_S}s"

    # Gate 4: equal-weight tenants stay inside the fairness band.
    per_tenant = {t: len(latencies[t]) for t in TENANTS}
    fairness = min(per_tenant.values()) / max(max(per_tenant.values()), 1)
    assert fairness >= FAIRNESS_BAND, f"fairness {fairness:.2f} < {FAIRNESS_BAND}"

    total_shed = sum(sheds.values())
    # Gate 5: the storm genuinely overloaded the tier -- load WAS shed,
    # and every shed was typed (anything untyped landed in `unexpected`).
    assert total_shed > 0, "storm never tripped admission control"

    entry = {
        "bench": "frontend_overload",
        "config": {
            "max_concurrent": MAX_CONCURRENT,
            "saturation_factor": SATURATION_FACTOR,
            "client_threads": n_threads,
            "duration_s": DURATION_S,
            "tenants": TENANTS,
            "batch_jobs": BATCH_JOBS,
        },
        "admitted": int(all_lat.size),
        "shed_typed": total_shed,
        "shed_untyped": 0,
        "unexpected_errors": 0,
        "hung_threads": 0,
        "latency_p50_s": round(p50, 4),
        "latency_p99_s": round(p99, 4),
        "p99_bound_s": P99_BOUND_S,
        "per_tenant_admitted": per_tenant,
        "per_tenant_shed": sheds,
        "fairness_min_over_max": round(fairness, 3),
        "fairness_band": FAIRNESS_BAND,
        "batch_completed": len(job_ids),
    }
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_frontend.json").write_text(json.dumps(entry, indent=2) + "\n")

    rows = [
        (t, per_tenant[t], sheds[t]) for t in TENANTS
    ]
    emit(
        "BENCH_frontend",
        format_series(
            f"frontend overload storm ({n_threads} clients on "
            f"{MAX_CONCURRENT} slots, {DURATION_S}s): "
            f"{all_lat.size} admitted, {total_shed} typed sheds, "
            f"p99 {p99 * 1000:.1f} ms, fairness {fairness:.2f}",
            ["tenant", "admitted", "shed"],
            rows,
        ),
    )

    frontend.shutdown()
    tb.shutdown()


def test_overload_storm_drives_slo_burn_and_retry_pricing(tmp_path):
    """The SLO loop closes under load: a shed storm burns the shed-ratio
    error budget, the monitor fires ``slo_burn`` and raises its cached
    pressure, and the admission controller's ``retry_after`` hints rise
    accordingly -- clients get pushed back harder while the objective is
    actually burning, not merely while the queue is deep.

    The recorder is ticked manually with synthetic timestamps so the
    burn evaluation is deterministic regardless of wall-clock jitter.
    """
    tb = build_testbed(num_workers=2, num_objects=3000, seed=42)
    # One slot behind a deep queue: the backlog term dominates the
    # retry_after estimate, so the (1 + pressure) scaling is visible
    # above the hint's 50 ms floor even for millisecond queries.
    frontend = QservFrontend(
        tb.czar,
        root=tmp_path,
        max_concurrent=1,
        max_queue_depth=8,
        max_queue_wait=0.05,
        cache_entries=0,
    )
    recorder = obs_timeseries.HistoryRecorder(interval=1.0)
    frontend.slo.detach()  # re-home the monitor onto the manual recorder
    frontend.slo.attach(recorder)

    calm_retries: list[float] = []
    hot_retries: list[float] = []
    retries = calm_retries  # swapped once the burn fires
    stop = threading.Event()

    def client(tenant: str):
        while not stop.is_set():
            try:
                frontend.query(QUERY, user=tenant, use_cache=False)
            except QservOverloadError as e:
                retries.append(e.retry_after)
                time.sleep(0.002)

    base = 1_000_000.0
    recorder.tick(now=base)  # burn baseline: deltas start from here
    threads = [
        threading.Thread(target=client, args=(TENANTS[i % len(TENANTS)],))
        for i in range(12)
    ]
    try:
        for t in threads:
            t.start()

        deadline = time.monotonic() + 20
        while not calm_retries and time.monotonic() < deadline:
            time.sleep(0.01)
        assert calm_retries, "storm never tripped admission control"
        assert frontend.slo.pressure() == 0.0  # nothing burning yet
        time.sleep(0.5)  # accumulate a tick's worth of shed/admit counts

        recorder.tick(now=base + 1.0)  # classify the storm interval
        pressure = frontend.slo.pressure()
        assert pressure > 0.0, frontend.slo.snapshot()
        shed_state = next(
            s for s in frontend.slo.snapshot() if s["objective"] == "shed-ratio"
        )
        assert shed_state["firing"], shed_state
        burns = obs_events.recent(type="slo_burn")
        assert any(e.fields["objective"] == "shed-ratio" for e in burns)

        retries = hot_retries  # price probes under pressure
        deadline = time.monotonic() + 20
        while len(hot_retries) < 20 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert hot_retries, "storm died before pressured sheds were seen"
    finally:
        stop.set()
        for t in threads:
            t.join(timeout=15)
        frontend.slo.detach()
        frontend.shutdown()
        tb.shutdown()

    assert not any(t.is_alive() for t in threads)
    calm = float(np.median(calm_retries))
    hot = float(np.median(hot_retries))
    # The hint must rise with the burn -- (1 + pressure)x before clamps.
    assert hot > calm, f"retry_after did not rise: calm {calm:.3f}s hot {hot:.3f}s"

    entry = {
        "bench": "frontend_slo_burn",
        "pressure": round(pressure, 3),
        "burn_fast": round(shed_state["burn_fast"], 3),
        "budget": shed_state["budget"],
        "calm_sheds": len(calm_retries),
        "hot_sheds": len(hot_retries),
        "retry_after_calm_s": round(calm, 4),
        "retry_after_hot_s": round(hot, 4),
    }
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_frontend_slo.json").write_text(
        json.dumps(entry, indent=2) + "\n"
    )
    emit(
        "BENCH_frontend_slo",
        format_series(
            f"SLO burn under storm: shed-ratio burning at "
            f"{shed_state['burn_fast']:.1f}x budget, pressure {pressure:.2f}",
            ["phase", "median retry_after (ms)", "sheds"],
            [
                ("calm", calm * 1e3, len(calm_retries)),
                ("burning", hot * 1e3, len(hot_retries)),
            ],
        ),
    )
