"""Figure 13: SHV2 execution time vs node count.

Paper: hours-scale, imperfect scalability, 100-node slowest (the same
random-area density variation as the in-text SHV2 numbers; access to
the cluster was too time-limited to repeat the expensive runs).
"""

import numpy as np

from repro.sim import SimulatedCluster, paper_cluster, paper_data_scale, shv2_job

from _series import emit, format_series


def simulate_fig13():
    scale = paper_data_scale()
    # The paper picked a different random area per configuration; its
    # 100-node run hit the densest region.  Densities chosen to mirror
    # the reported non-monotonic ordering.
    densities = {40: 1.0, 100: 1.3, 150: 0.95}
    out = {}
    for nodes in (40, 100, 150):
        spec = paper_cluster(nodes)
        c = SimulatedCluster(spec)
        c.submit(shv2_job(scale, spec, density_factor=densities[nodes]))
        out[nodes] = c.run()[0].elapsed
    return out


def test_fig13_scaling_shv2(benchmark):
    series = benchmark.pedantic(simulate_fig13, rounds=1, iterations=1)
    rows = [(n, t, t / 3600.0) for n, t in sorted(series.items())]
    emit(
        "fig13_scaling_shv2",
        format_series(
            "Figure 13: SHV2 execution time vs node count "
            "(paper: hours-scale, 100-node configuration slowest)",
            ["nodes", "seconds", "hours"],
            rows,
        ),
    )
    for t in series.values():
        assert 1.5 * 3600 < t < 6 * 3600
    assert series[100] == max(series.values())
